//! The sorted list *L* of postorder numbers in use (§4).
//!
//! The paper's incremental update algorithms "assume that all the postorder
//! numbers currently in use are maintained in a sorted list L" and exploit
//! the *gaps* deliberately left between numbers ("the initial gap could be
//! determined by dividing the range of integers that can be accommodated in
//! one word by the number of nodes"). [`NumberLine`] is that list: it maps
//! each in-use number to the node that owns it, answers
//! predecessor/successor queries, and produces [`RenumberPlan`]s for the
//! "what if empty numbers run out" case.
//!
//! Freed numbers (from subtree relocation on tree-arc deletion) are kept as
//! *tombstones*: they still occupy their position on the line — stale tree
//! intervals elsewhere may still cover them, so reusing them for unrelated
//! nodes would create false positives — but they no longer decode to a node.

use std::collections::BTreeMap;
use std::fmt;

/// Default entry capacity of a [`NumberLine`]: the frozen query plane and
/// the dense node indexing both address line entries with `u32` ranks, so a
/// line is full once it holds `u32::MAX` occupied numbers (live or
/// tombstoned). Builds at the 5–50M-node scale sit well below this; the
/// guard exists so they fail loudly instead of wrapping if they ever don't.
pub const DEFAULT_LINE_CAPACITY: usize = u32::MAX as usize;

/// The number line cannot admit another occupied number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityError {
    /// Occupied entries (live + tombstones) at the time of the attempt.
    pub used: usize,
    /// The line's configured capacity.
    pub capacity: usize,
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "number line full: {} of {} positions occupied",
            self.used, self.capacity
        )
    }
}

impl std::error::Error for CapacityError {}

/// The owner of an in-use number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// A live node, identified by its dense index.
    Node(u32),
    /// A freed number that must not be reused until a full renumbering.
    Tombstone,
}

/// The sorted postorder-number list *L*.
#[derive(Debug, Clone)]
pub struct NumberLine {
    slots: BTreeMap<u64, Slot>,
    live: usize,
    capacity: usize,
}

impl Default for NumberLine {
    fn default() -> Self {
        NumberLine {
            slots: BTreeMap::new(),
            live: 0,
            capacity: DEFAULT_LINE_CAPACITY,
        }
    }
}

impl NumberLine {
    /// Creates an empty number line with the [`DEFAULT_LINE_CAPACITY`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The maximum number of occupied entries this line admits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Overrides the entry capacity — admission control for tests and for
    /// deployments that want to fail earlier than [`DEFAULT_LINE_CAPACITY`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is below the current occupancy.
    pub fn set_capacity(&mut self, capacity: usize) {
        assert!(
            capacity >= self.slots.len(),
            "capacity {capacity} below current occupancy {}",
            self.slots.len()
        );
        self.capacity = capacity;
    }

    /// Number of live (non-tombstone) entries.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Total entries including tombstones.
    pub fn total_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of tombstoned entries — always `total_count() - live_count()`,
    /// exposed so structural audits can state the accounting identity
    /// explicitly.
    pub fn tombstone_count(&self) -> usize {
        self.slots.len() - self.live
    }

    /// Validates the line's internal invariants by one full scan: the cached
    /// live count must equal the number of `Node` slots actually stored (the
    /// tombstone accounting `total_count - live_count` follows). O(total
    /// entries); used by the closure-level structural audit in `tc-core`.
    pub fn check_invariants(&self) -> bool {
        let scanned_live = self
            .slots
            .values()
            .filter(|slot| matches!(slot, Slot::Node(_)))
            .count();
        scanned_live == self.live && self.live <= self.slots.len()
    }

    /// Assigns `num` to the node with dense index `node`.
    ///
    /// # Panics
    ///
    /// Panics if `num` is already in use (live or tombstoned): numbers are
    /// unique by construction. Panics on a full line — update paths that can
    /// surface the condition as an error use [`NumberLine::try_assign`].
    pub fn assign(&mut self, num: u64, node: u32) {
        self.try_assign(num, node).expect("number line capacity exhausted");
    }

    /// Assigns `num` to the node with dense index `node`, failing with a
    /// [`CapacityError`] — not a panic — if the line is already at capacity.
    /// Tombstones count: they occupy positions a frozen rank array must
    /// still index.
    ///
    /// # Panics
    ///
    /// Panics if `num` is already in use (live or tombstoned); duplicate
    /// numbers are a logic error, not a resource condition.
    pub fn try_assign(&mut self, num: u64, node: u32) -> Result<(), CapacityError> {
        if self.slots.len() >= self.capacity {
            return Err(CapacityError { used: self.slots.len(), capacity: self.capacity });
        }
        let prev = self.slots.insert(num, Slot::Node(node));
        assert!(prev.is_none(), "postorder number {num} already in use");
        self.live += 1;
        Ok(())
    }

    /// Tombstones `num`: the number stays occupied but decodes to nothing.
    ///
    /// # Panics
    ///
    /// Panics if `num` is not live.
    pub fn tombstone(&mut self, num: u64) {
        match self.slots.insert(num, Slot::Tombstone) {
            Some(Slot::Node(_)) => self.live -= 1,
            other => panic!("tombstoning {num} which was {other:?}"),
        }
    }

    /// The node owning `num`, if `num` is live.
    pub fn node_at(&self, num: u64) -> Option<u32> {
        match self.slots.get(&num) {
            Some(Slot::Node(n)) => Some(*n),
            _ => None,
        }
    }

    /// Whether `num` is occupied (live or tombstone).
    pub fn is_used(&self, num: u64) -> bool {
        self.slots.contains_key(&num)
    }

    /// Greatest occupied number strictly less than `num`.
    pub fn prev_used(&self, num: u64) -> Option<u64> {
        self.slots.range(..num).next_back().map(|(k, _)| *k)
    }

    /// Smallest occupied number strictly greater than `num`.
    pub fn next_used(&self, num: u64) -> Option<u64> {
        self.slots
            .range((std::ops::Bound::Excluded(num), std::ops::Bound::Unbounded))
            .next()
            .map(|(k, _)| *k)
    }

    /// Greatest occupied number, if any.
    pub fn max_used(&self) -> Option<u64> {
        self.slots.keys().next_back().copied()
    }

    /// Greatest *live* number and its node, if any — skips any tombstones
    /// sitting above it (e.g. after removals at the top of the line).
    pub fn max_live(&self) -> Option<(u64, u32)> {
        self.slots.iter().rev().find_map(|(num, slot)| match slot {
            Slot::Node(n) => Some((*num, *n)),
            Slot::Tombstone => None,
        })
    }

    /// Live nodes whose numbers fall in `[lo, hi]`, in ascending number
    /// order. This is how interval labels decode back into successor lists.
    pub fn live_in_range(&self, lo: u64, hi: u64) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.slots.range(lo..=hi).filter_map(|(num, slot)| match slot {
            Slot::Node(n) => Some((*num, *n)),
            Slot::Tombstone => None,
        })
    }

    /// Count of *occupied* numbers in `[lo, hi]` (including tombstones).
    pub fn used_in_range(&self, lo: u64, hi: u64) -> usize {
        self.slots.range(lo..=hi).count()
    }

    /// Picks the insertion number for a new child whose parent owns the open
    /// region `(region_lo, region_hi)` (both endpoints occupied or virtual).
    ///
    /// Returns the midpoint if at least one free integer exists strictly
    /// between the region's greatest occupied number and `region_hi`;
    /// otherwise `None`, signalling that a renumbering is needed.
    ///
    /// The caller guarantees the open region contains no occupied numbers
    /// (that is the tree-cover ownership invariant); this is debug-checked.
    pub fn midpoint_in(&self, region_lo: u64, region_hi: u64) -> Option<u64> {
        debug_assert!(region_lo < region_hi);
        debug_assert_eq!(
            self.slots
                .range((
                    std::ops::Bound::Excluded(region_lo),
                    std::ops::Bound::Excluded(region_hi)
                ))
                .count(),
            0,
            "owned region ({region_lo}, {region_hi}) contains occupied numbers"
        );
        if region_hi - region_lo < 2 {
            return None; // no free integer strictly inside
        }
        Some(region_lo + (region_hi - region_lo) / 2)
    }

    /// Builds a plan that respaces every occupied number (tombstones are
    /// dropped) to multiples of `gap`, preserving order. Numbers start at
    /// `gap` so space remains below the first node.
    pub fn renumber_plan(&self, gap: u64) -> RenumberPlan {
        assert!(gap >= 1);
        let mapping: BTreeMap<u64, u64> = self
            .slots
            .iter()
            .filter(|(_, slot)| matches!(slot, Slot::Node(_)))
            .enumerate()
            .map(|(ix, (old, _))| (*old, (ix as u64 + 1) * gap))
            .collect();
        RenumberPlan { mapping }
    }

    /// Applies a renumber plan, producing a fresh line with tombstones
    /// dropped.
    pub fn apply_plan(&self, plan: &RenumberPlan) -> NumberLine {
        let mut out = NumberLine::new();
        out.capacity = self.capacity;
        for (old, slot) in &self.slots {
            if let Slot::Node(n) = slot {
                out.assign(plan.map_used(*old).expect("plan must cover all live numbers"), *n);
            }
        }
        out
    }
}

/// A monotone remapping of occupied postorder numbers, produced when the
/// gaps run out (§4.1 "What if empty numbers run out").
///
/// The plan maps *occupied* numbers only; interval endpoints are remapped
/// with [`RenumberPlan::map_used`] for `hi` endpoints (always occupied) and
/// [`RenumberPlan::map_low`] for `lo` endpoints (which sit one above an
/// occupied number, per the labeling convention).
#[derive(Debug, Clone)]
pub struct RenumberPlan {
    mapping: BTreeMap<u64, u64>,
}

impl RenumberPlan {
    /// Builds a plan from explicit `(old, new)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the pairs are not strictly monotone (order must be
    /// preserved, or interval semantics break).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let mapping: BTreeMap<u64, u64> = pairs.into_iter().collect();
        let mut prev: Option<u64> = None;
        for &new in mapping.values() {
            if let Some(p) = prev {
                assert!(p < new, "renumber plan is not monotone");
            }
            prev = Some(new);
        }
        RenumberPlan { mapping }
    }

    /// New number for occupied number `old`.
    pub fn map_used(&self, old: u64) -> Option<u64> {
        self.mapping.get(&old).copied()
    }

    /// Remaps an interval `lo` endpoint: `lo - 1` is occupied by convention,
    /// so the new `lo` is `map(lo - 1) + 1`. A `lo` of 0 (below every
    /// number) maps to 0.
    pub fn map_low(&self, lo: u64) -> Option<u64> {
        if lo == 0 {
            return Some(0);
        }
        self.map_used(lo - 1).map(|n| n + 1)
    }

    /// Number of remapped entries.
    pub fn len(&self) -> usize {
        self.mapping.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.mapping.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_with(nums: &[(u64, u32)]) -> NumberLine {
        let mut l = NumberLine::new();
        for &(num, node) in nums {
            l.assign(num, node);
        }
        l
    }

    #[test]
    fn assign_and_lookup() {
        let l = line_with(&[(10, 0), (20, 1), (30, 2)]);
        assert_eq!(l.node_at(20), Some(1));
        assert_eq!(l.node_at(15), None);
        assert!(l.is_used(10));
        assert_eq!(l.live_count(), 3);
    }

    #[test]
    #[should_panic(expected = "already in use")]
    fn double_assign_panics() {
        let mut l = line_with(&[(10, 0)]);
        l.assign(10, 1);
    }

    #[test]
    fn prev_next_max() {
        let l = line_with(&[(10, 0), (20, 1), (30, 2)]);
        assert_eq!(l.prev_used(25), Some(20));
        assert_eq!(l.prev_used(20), Some(10));
        assert_eq!(l.prev_used(10), None);
        assert_eq!(l.next_used(10), Some(20));
        assert_eq!(l.next_used(30), None);
        assert_eq!(l.max_used(), Some(30));
    }

    #[test]
    fn tombstones_occupy_but_do_not_decode() {
        let mut l = line_with(&[(10, 0), (20, 1)]);
        l.tombstone(10);
        assert!(l.is_used(10));
        assert_eq!(l.node_at(10), None);
        assert_eq!(l.live_count(), 1);
        assert_eq!(l.total_count(), 2);
        assert_eq!(l.prev_used(20), Some(10), "tombstones still block gaps");
        let live: Vec<_> = l.live_in_range(0, 100).collect();
        assert_eq!(live, vec![(20, 1)]);
    }

    #[test]
    fn tombstone_accounting_identity() {
        let mut l = line_with(&[(10, 0), (20, 1), (30, 2)]);
        assert_eq!(l.tombstone_count(), 0);
        assert!(l.check_invariants());
        l.tombstone(20);
        l.tombstone(30);
        assert_eq!(l.tombstone_count(), 2);
        assert_eq!(l.total_count() - l.live_count(), l.tombstone_count());
        assert!(l.check_invariants());
        // Renumbering drops tombstones and restores a clean line.
        let fresh = l.apply_plan(&l.renumber_plan(10));
        assert_eq!(fresh.tombstone_count(), 0);
        assert!(fresh.check_invariants());
    }

    #[test]
    #[should_panic(expected = "tombstoning")]
    fn tombstone_of_free_number_panics() {
        let mut l = NumberLine::new();
        l.tombstone(5);
    }

    #[test]
    fn live_in_range_is_ordered_and_bounded() {
        let l = line_with(&[(10, 0), (20, 1), (30, 2), (40, 3)]);
        let got: Vec<_> = l.live_in_range(15, 35).collect();
        assert_eq!(got, vec![(20, 1), (30, 2)]);
        assert_eq!(l.used_in_range(10, 40), 4);
        assert_eq!(l.used_in_range(11, 19), 0);
    }

    #[test]
    fn midpoint_allocation_matches_paper_example() {
        // Fig 4.1: region (30, 40) -> number 35; region (40, 50) -> 45.
        let l = line_with(&[(10, 0), (20, 1), (30, 2), (40, 3), (50, 4)]);
        assert_eq!(l.midpoint_in(30, 40), Some(35));
        assert_eq!(l.midpoint_in(40, 50), Some(45));
    }

    #[test]
    fn midpoint_exhaustion_returns_none() {
        let l = line_with(&[(10, 0), (11, 1)]);
        assert_eq!(l.midpoint_in(10, 11), None);
        assert_eq!(l.midpoint_in(9, 10), None, "width-1 region has no interior");
    }

    #[test]
    fn renumber_plan_respaces() {
        let mut l = line_with(&[(3, 0), (4, 1), (5, 2)]);
        l.tombstone(4);
        let plan = l.renumber_plan(100);
        assert_eq!(plan.map_used(3), Some(100));
        assert_eq!(plan.map_used(5), Some(200));
        assert_eq!(plan.map_used(4), None, "tombstones dropped");
        let fresh = l.apply_plan(&plan);
        assert_eq!(fresh.node_at(100), Some(0));
        assert_eq!(fresh.node_at(200), Some(2));
        assert_eq!(fresh.total_count(), 2, "tombstones gone after renumber");
    }

    #[test]
    fn plan_low_mapping() {
        let l = line_with(&[(10, 0), (20, 1)]);
        let plan = l.renumber_plan(7);
        // 10 -> 7, 20 -> 14. A low of 11 (= 10+1) maps to 8.
        assert_eq!(plan.map_low(11), Some(8));
        assert_eq!(plan.map_low(0), Some(0));
        assert_eq!(plan.map_low(5), None, "low above a free number is unmappable");
    }

    #[test]
    #[should_panic(expected = "not monotone")]
    fn non_monotone_plan_rejected() {
        let _ = RenumberPlan::from_pairs([(1, 10), (2, 5)]);
    }

    #[test]
    fn capacity_guard_errors_instead_of_wrapping() {
        let mut l = NumberLine::new();
        assert_eq!(l.capacity(), DEFAULT_LINE_CAPACITY);
        l.set_capacity(2);
        assert!(l.try_assign(10, 0).is_ok());
        assert!(l.try_assign(20, 1).is_ok());
        let err = l.try_assign(30, 2).unwrap_err();
        assert_eq!(err, CapacityError { used: 2, capacity: 2 });
        assert_eq!(l.total_count(), 2, "failed assign left the line unchanged");
        assert_eq!(l.node_at(30), None);
        // The error is an error, and it prints the occupancy.
        assert!(err.to_string().contains("2 of 2"));
    }

    #[test]
    fn tombstones_count_toward_capacity() {
        // A tombstone still occupies a rank-indexed position, so it must
        // count against the admission limit.
        let mut l = NumberLine::new();
        l.set_capacity(2);
        l.assign(10, 0);
        l.assign(20, 1);
        l.tombstone(10);
        assert_eq!(l.live_count(), 1);
        assert!(l.try_assign(30, 2).is_err(), "tombstone holds its position");
        // Renumbering drops tombstones and frees the position again.
        let fresh = l.apply_plan(&l.renumber_plan(10));
        assert_eq!(fresh.capacity(), 2, "capacity survives renumbering");
        let mut fresh = fresh;
        assert!(fresh.try_assign(30, 2).is_ok());
    }

    #[test]
    #[should_panic(expected = "capacity exhausted")]
    fn unchecked_assign_panics_at_capacity() {
        let mut l = NumberLine::new();
        l.set_capacity(1);
        l.assign(10, 0);
        l.assign(20, 1);
    }

    #[test]
    #[should_panic(expected = "below current occupancy")]
    fn shrinking_capacity_below_occupancy_rejected() {
        let mut l = line_with(&[(10, 0), (20, 1)]);
        l.set_capacity(1);
    }
}
