//! Byte-level row layout for the *paged* frozen plane.
//!
//! The out-of-core query plane stores the same fenced boundary-array rows as
//! [`FlatIntervalIndex`] / [`NarrowIntervalIndex`], but serialized into
//! page-aligned disk segments instead of `Vec`s: a `HEADS` segment of
//! fixed-size row headers and a `SPILL` segment of boundary keys. This
//! module is the single source of truth for that byte layout — the
//! streaming freeze writer encodes rows through it and the paged prober
//! decodes them through it, so the two cannot drift. The field order and
//! geometry (fence count, slice granule, padding) are identical to the
//! in-memory `repr(C)` row headers in `flat.rs`; a paged probe therefore
//! counts exactly the same boundaries as an in-memory probe and returns
//! bit-identical answers.
//!
//! Everything here is pure byte arithmetic over caller-provided slices —
//! no I/O, no panics on corrupt *values* (only on caller slice-length
//! violations, which the paged plane bounds-checks before calling in).
//!
//! [`FlatIntervalIndex`]: crate::FlatIntervalIndex
//! [`NarrowIntervalIndex`]: crate::NarrowIntervalIndex

/// Intervals per slice granule; must match `flat::SLICE_GRANULE`.
const SLICE_GRANULE: usize = 8;

/// The rank key width of a paged plane — the on-disk counterpart of the
/// `FlatIntervalIndex` (`u32`) / `NarrowIntervalIndex` (`u16`) split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyWidth {
    /// `u16` ranks: 64-byte headers, 26 fences. Usable when the live number
    /// line has at most `u16::MAX` entries.
    Narrow,
    /// `u32` ranks: 128-byte headers, 27 fences.
    Wide,
}

impl KeyWidth {
    /// Bytes per rank key.
    #[inline]
    pub fn key_bytes(self) -> usize {
        match self {
            KeyWidth::Narrow => 2,
            KeyWidth::Wide => 4,
        }
    }

    /// Fence keys per row header (matches the in-memory layouts).
    #[inline]
    pub fn fences(self) -> usize {
        match self {
            KeyWidth::Narrow => 26,
            KeyWidth::Wide => 27,
        }
    }

    /// Bytes per row header: 64 for narrow, 128 for wide — both divide the
    /// 4 KiB page, so a header never straddles a page boundary.
    #[inline]
    pub fn head_bytes(self) -> usize {
        match self {
            KeyWidth::Narrow => 64,
            KeyWidth::Wide => 128,
        }
    }

    /// The key maximum, used as the fence/padding sentinel (widened to
    /// `u32` for the narrow layout).
    #[inline]
    pub fn max_key(self) -> u32 {
        match self {
            KeyWidth::Narrow => u16::MAX as u32,
            KeyWidth::Wide => u32::MAX,
        }
    }

    /// Reads the key at byte offset `pos * key_bytes()` of `buf`, widened.
    #[inline]
    pub fn key_at(self, buf: &[u8], pos: usize) -> u32 {
        match self {
            KeyWidth::Narrow => {
                let o = pos * 2;
                u16::from_le_bytes([buf[o], buf[o + 1]]) as u32
            }
            KeyWidth::Wide => {
                let o = pos * 4;
                u32::from_le_bytes([buf[o], buf[o + 1], buf[o + 2], buf[o + 3]])
            }
        }
    }

    /// Writes `v` as the key at position `pos` of `buf`.
    #[inline]
    pub fn put_key(self, buf: &mut [u8], pos: usize, v: u32) {
        match self {
            KeyWidth::Narrow => {
                let o = pos * 2;
                buf[o..o + 2].copy_from_slice(&(v as u16).to_le_bytes());
            }
            KeyWidth::Wide => {
                let o = pos * 4;
                buf[o..o + 4].copy_from_slice(&v.to_le_bytes());
            }
        }
    }
}

/// Slice width (in intervals) for a row of `m` intervals — identical to the
/// in-memory layouts: the smallest [`SLICE_GRANULE`] multiple that fits `m`
/// into `fences + 1` slices.
#[inline]
pub fn slice_width(m: usize, kw: KeyWidth) -> usize {
    (m.div_ceil(kw.fences() + 1)).next_multiple_of(SLICE_GRANULE)
}

/// Total boundary *keys* a row of `m` intervals occupies in the spill
/// segment, padding included: whole slices of `2 * slice_width` keys.
/// Zero for an empty row.
#[inline]
pub fn padded_boundary_keys(m: usize, kw: KeyWidth) -> usize {
    if m == 0 {
        return 0;
    }
    let width = slice_width(m, kw);
    m.div_ceil(width) * 2 * width
}

/// A decoded row header (fences are read lazily during probes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagedHead {
    /// First interval's endpoints; `[1, 0]` for an empty row.
    pub lo0: u32,
    /// First interval's upper endpoint.
    pub hi0: u32,
    /// Start of the row's boundary slices in the spill segment, in keys.
    pub spill_start: u32,
    /// The row's merged interval count.
    pub intervals: u32,
    /// One past the row's last covered rank; 0 for an empty row.
    pub top: u32,
}

// Field byte offsets within a header, per width. Mirrors the `repr(C)`
// order in `flat.rs`: lo0, hi0, spill_start (u32), intervals, top, fences.
#[inline]
fn field_offsets(kw: KeyWidth) -> (usize, usize, usize, usize, usize, usize) {
    let kb = kw.key_bytes();
    // (lo0, hi0, spill_start, intervals, top, fences_base)
    (0, kb, 2 * kb, 2 * kb + 4, 3 * kb + 4, 4 * kb + 4)
}

/// Encodes one row header into `out` (exactly [`KeyWidth::head_bytes`]).
/// `intervals` must be the row's *merged* intervals, ascending and disjoint,
/// with every endpoint strictly below [`KeyWidth::max_key`]; `spill_start`
/// is the row's first key index in the spill segment.
pub fn encode_head(out: &mut [u8], kw: KeyWidth, intervals: &[(u32, u32)], spill_start: u32) {
    assert_eq!(out.len(), kw.head_bytes(), "head buffer size");
    let (o_lo0, o_hi0, o_spill, o_m, o_top, o_fences) = field_offsets(kw);
    let Some(&(lo0, hi0)) = intervals.first() else {
        // The empty row: impossible interval [1, 0], zero extent, all-max
        // fences — byte-identical to `EMPTY_ROW` in flat.rs.
        out.fill(0);
        kw.put_key(&mut out[o_lo0..], 0, 1);
        kw.put_key(&mut out[o_hi0..], 0, 0);
        for i in 0..kw.fences() {
            kw.put_key(&mut out[o_fences..], i, kw.max_key());
        }
        return;
    };
    let m = intervals.len();
    let width = slice_width(m, kw);
    let slices = m.div_ceil(width);
    kw.put_key(&mut out[o_lo0..], 0, lo0);
    kw.put_key(&mut out[o_hi0..], 0, hi0);
    out[o_spill..o_spill + 4].copy_from_slice(&spill_start.to_le_bytes());
    kw.put_key(&mut out[o_m..], 0, m as u32);
    kw.put_key(&mut out[o_top..], 0, intervals[m - 1].1 + 1);
    for i in 0..kw.fences() {
        // fences[i] is the first boundary of slice i + 1 (padding boundaries
        // are the key maximum), or the key maximum past the last slice.
        let fence = if i < slices - 1 {
            boundary_at(intervals, (i + 1) * 2 * width, kw)
        } else {
            kw.max_key()
        };
        kw.put_key(&mut out[o_fences..], i, fence);
    }
}

/// The `j`-th boundary of a row: `lo_0, hi_0+1, lo_1, hi_1+1, ...`, with
/// the key maximum past the real boundaries (tail-slice padding).
#[inline]
fn boundary_at(intervals: &[(u32, u32)], j: usize, kw: KeyWidth) -> u32 {
    if j < 2 * intervals.len() {
        let (lo, hi) = intervals[j / 2];
        if j % 2 == 0 { lo } else { hi + 1 }
    } else {
        kw.max_key()
    }
}

/// Appends one row's boundary keys — real boundaries plus tail-slice
/// padding, [`padded_boundary_keys`] keys total — to `out` as bytes.
pub fn encode_boundaries(out: &mut Vec<u8>, kw: KeyWidth, intervals: &[(u32, u32)]) {
    let total = padded_boundary_keys(intervals.len(), kw);
    let base = out.len();
    out.resize(base + total * kw.key_bytes(), 0);
    let buf = &mut out[base..];
    for j in 0..total {
        kw.put_key(buf, j, boundary_at(intervals, j, kw));
    }
}

/// Decodes a row header from `bytes` (at least [`KeyWidth::head_bytes`]).
pub fn decode_head(bytes: &[u8], kw: KeyWidth) -> PagedHead {
    let (o_lo0, o_hi0, o_spill, o_m, o_top, _) = field_offsets(kw);
    PagedHead {
        lo0: kw.key_at(&bytes[o_lo0..], 0),
        hi0: kw.key_at(&bytes[o_hi0..], 0),
        spill_start: u32::from_le_bytes([
            bytes[o_spill],
            bytes[o_spill + 1],
            bytes[o_spill + 2],
            bytes[o_spill + 3],
        ]),
        intervals: kw.key_at(&bytes[o_m..], 0),
        top: kw.key_at(&bytes[o_top..], 0),
    }
}

/// Outcome of probing a row header for rank `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadProbe {
    /// The header alone settles the probe.
    Hit(bool),
    /// The probe must parity-count one boundary slice: `key_count` keys of
    /// the spill segment starting at key index `key_start`. The answer is
    /// `count_le(slice, t)` being odd.
    Scan {
        /// First key index of the slice within the spill segment.
        key_start: u64,
        /// Keys in the slice (`2 * slice_width`).
        key_count: u32,
    },
}

/// Probes a row header for rank `t` — the paged half of `contains_point`.
/// Identical decision sequence to the in-memory probe: inline first
/// interval, row upper bound, then a fence scan selecting one slice.
pub fn probe_head(bytes: &[u8], kw: KeyWidth, t: u32) -> HeadProbe {
    let (_, _, _, _, _, o_fences) = field_offsets(kw);
    let head = decode_head(bytes, kw);
    if t <= head.hi0 {
        return HeadProbe::Hit(t >= head.lo0);
    }
    if t >= head.top {
        return HeadProbe::Hit(false);
    }
    let m = head.intervals as usize;
    let fences = &bytes[o_fences..];
    let mut g = 0usize;
    for i in 0..kw.fences() {
        g += usize::from(kw.key_at(fences, i) <= t);
    }
    let width = 2 * slice_width(m, kw);
    HeadProbe::Scan {
        key_start: head.spill_start as u64 + (g * width) as u64,
        key_count: width as u32,
    }
}

/// Counts the keys `<= t` in a raw key run (`bytes.len()` must be a
/// multiple of the key size) — the parity count of a boundary slice, usable
/// piecewise across page boundaries since addition is associative.
pub fn count_le(bytes: &[u8], kw: KeyWidth, t: u32) -> usize {
    let n = bytes.len() / kw.key_bytes();
    let mut count = 0usize;
    for pos in 0..n {
        count += usize::from(kw.key_at(bytes, pos) <= t);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlatBuilder, NarrowBuilder};

    /// Serializes rows via this module and probes every rank through the
    /// byte layout, comparing against the in-memory index built from the
    /// same rows — the bit-identical-layout contract.
    fn assert_rows_match(kw: KeyWidth, rows: &[Vec<(u32, u32)>], top_probe: u32) {
        // Byte-side: encode heads + spill exactly as the plane writer does.
        let mut heads = Vec::new();
        let mut spill = Vec::new();
        let mut spill_keys = 0u32;
        for row in rows {
            let base = heads.len();
            heads.resize(base + kw.head_bytes(), 0);
            encode_head(&mut heads[base..], kw, row, spill_keys);
            encode_boundaries(&mut spill, kw, row);
            spill_keys += padded_boundary_keys(row.len(), kw) as u32;
        }
        let probe = |row: usize, t: u32| -> bool {
            let hb = kw.head_bytes();
            match probe_head(&heads[row * hb..(row + 1) * hb], kw, t) {
                HeadProbe::Hit(ans) => ans,
                HeadProbe::Scan { key_start, key_count } => {
                    let kb = kw.key_bytes();
                    let a = key_start as usize * kb;
                    let b = a + key_count as usize * kb;
                    count_le(&spill[a..b], kw, t) % 2 == 1
                }
            }
        };
        // Memory-side reference.
        match kw {
            KeyWidth::Wide => {
                let mut b = FlatBuilder::with_capacity(rows.len(), 0);
                for row in rows {
                    for &(lo, hi) in row {
                        b.push(lo, hi);
                    }
                    b.finish_row();
                }
                let idx = b.finish();
                for row in 0..rows.len() {
                    for t in 0..top_probe {
                        assert_eq!(
                            probe(row, t),
                            idx.contains_point(row, t),
                            "wide row {row}, t {t}"
                        );
                    }
                }
            }
            KeyWidth::Narrow => {
                let mut b = NarrowBuilder::with_capacity(rows.len(), 0);
                for row in rows {
                    for &(lo, hi) in row {
                        b.push(lo as u16, hi as u16);
                    }
                    b.finish_row();
                }
                let idx = b.finish();
                for row in 0..rows.len() {
                    for t in 0..top_probe {
                        assert_eq!(
                            probe(row, t),
                            idx.contains_point(row, t as u16),
                            "narrow row {row}, t {t}"
                        );
                    }
                }
            }
        }
    }

    /// Pre-merged interval rows (ascending, disjoint, non-adjacent) — what
    /// the freeze path hands the encoder.
    fn sample_rows() -> Vec<Vec<(u32, u32)>> {
        vec![
            vec![(1, 3), (7, 9)],
            vec![],
            vec![(2, 2)],
            vec![(0, 9), (20, 30)],
            vec![(0, 0)],
        ]
    }

    #[test]
    fn byte_probe_matches_memory_probe_both_widths() {
        assert_rows_match(KeyWidth::Wide, &sample_rows(), 40);
        assert_rows_match(KeyWidth::Narrow, &sample_rows(), 40);
    }

    #[test]
    fn large_rows_cross_fence_slices() {
        // Rows around the slice-count boundaries, so the fence scan and
        // multi-slice padding paths are exercised in both widths.
        let mut state = 0x0123_4567_89ab_cdefu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 33) as u32
        };
        for m in [1usize, 8, 9, 223, 224, 225, 500] {
            let mut row = Vec::with_capacity(m);
            let mut lo = next() % 3;
            for _ in 0..m {
                let hi = lo + next() % 9;
                row.push((lo, hi));
                lo = hi + 2 + next() % 7;
            }
            let top = row.last().unwrap().1 + 3;
            let rows = vec![row];
            assert_rows_match(KeyWidth::Wide, &rows, top.min(4000));
            if top < u16::MAX as u32 {
                assert_rows_match(KeyWidth::Narrow, &rows, top.min(4000));
            }
        }
    }

    #[test]
    fn geometry_constants() {
        assert_eq!(KeyWidth::Wide.head_bytes(), 128);
        assert_eq!(KeyWidth::Narrow.head_bytes(), 64);
        // Headers exactly fill their footprint: fields + fences.
        let (.., o_fences) = {
            let t = field_offsets(KeyWidth::Wide);
            (t.0, t.5)
        };
        assert_eq!(o_fences + KeyWidth::Wide.fences() * 4, 128);
        let (.., o_fences) = {
            let t = field_offsets(KeyWidth::Narrow);
            (t.0, t.5)
        };
        assert_eq!(o_fences + KeyWidth::Narrow.fences() * 2, 64);
        // Rows always occupy whole 16-key (one-slice-granule) units, so
        // spill starts stay slice-aligned.
        for m in 0..600 {
            assert_eq!(padded_boundary_keys(m, KeyWidth::Wide) % 16, 0);
            assert_eq!(padded_boundary_keys(m, KeyWidth::Narrow) % 16, 0);
        }
    }

    #[test]
    fn head_roundtrip() {
        for kw in [KeyWidth::Wide, KeyWidth::Narrow] {
            let mut buf = vec![0u8; kw.head_bytes()];
            encode_head(&mut buf, kw, &[(3, 5), (9, 12)], 48);
            let head = decode_head(&buf, kw);
            assert_eq!(
                head,
                PagedHead { lo0: 3, hi0: 5, spill_start: 48, intervals: 2, top: 13 }
            );
            encode_head(&mut buf, kw, &[], 0);
            let empty = decode_head(&buf, kw);
            assert_eq!(empty, PagedHead { lo0: 1, hi0: 0, spill_start: 0, intervals: 0, top: 0 });
        }
    }
}
