//! Serial/parallel equivalence: a closure built with `threads > 1` must be
//! *identical* to the serial build — same tree cover, same postorder
//! numbers, bit-identical interval sets — not merely query-equivalent.
//!
//! The level-parallel sweeps promise this because same-level nodes share no
//! arcs and every per-node computation runs the exact serial insert
//! sequence; these tests pin the promise across graph families, strategies,
//! and the gap/reserve/merge configuration space.

use tc_core::{ClosureConfig, CompressedClosure, CoverStrategy};
use tc_graph::{generators, DiGraph, NodeId};

/// Asserts the two closures are structurally identical, node by node.
fn assert_identical(serial: &CompressedClosure, parallel: &CompressedClosure, what: &str) {
    let n = serial.node_count();
    assert_eq!(parallel.node_count(), n, "{what}: node count");
    for ix in 0..n {
        let v = NodeId::from_index(ix);
        assert_eq!(
            serial.cover().parent(v),
            parallel.cover().parent(v),
            "{what}: tree parent of {v:?}"
        );
        assert_eq!(
            serial.post_number(v),
            parallel.post_number(v),
            "{what}: postorder number of {v:?}"
        );
        assert_eq!(
            serial.intervals(v),
            parallel.intervals(v),
            "{what}: interval set of {v:?}"
        );
    }
    assert_eq!(
        serial.total_intervals(),
        parallel.total_intervals(),
        "{what}: total intervals"
    );
}

fn build_pair(g: &DiGraph, config: ClosureConfig) -> (CompressedClosure, CompressedClosure) {
    let serial = config.threads(1).build(g).unwrap();
    let parallel = config.threads(4).build(g).unwrap();
    (serial, parallel)
}

#[test]
fn random_dags_build_identically() {
    for seed in 0..6 {
        for degree in [1.0, 2.5, 4.0] {
            let g = generators::random_dag(generators::RandomDagConfig {
                nodes: 120,
                avg_out_degree: degree,
                seed,
            });
            let (serial, parallel) = build_pair(&g, ClosureConfig::new());
            assert_identical(&serial, &parallel, &format!("seed {seed} degree {degree}"));
            parallel.verify().unwrap();
        }
    }
}

#[test]
fn trees_and_bipartite_worst_case_build_identically() {
    let shapes: Vec<(&str, DiGraph)> = vec![
        ("balanced tree", generators::balanced_tree(3, 4)),
        ("bipartite worst", generators::bipartite_worst(6, 6)),
        ("bipartite hub", generators::bipartite_with_hub(6, 6)),
        ("chain", DiGraph::from_edges((0..200u32).zip(1..201).collect::<Vec<_>>())),
        ("empty", DiGraph::new()),
    ];
    for (name, g) in &shapes {
        let (serial, parallel) = build_pair(g, ClosureConfig::new().gap(1));
        assert_identical(&serial, &parallel, name);
    }
}

#[test]
fn gap_reserve_and_merge_configurations_build_identically() {
    let g = generators::random_dag(generators::RandomDagConfig {
        nodes: 100,
        avg_out_degree: 3.0,
        seed: 7,
    });
    let configs = [
        ClosureConfig::new().gap(1),
        ClosureConfig::new().gap(16).reserve(3),
        ClosureConfig::new().gap(1 << 20).reserve(100),
        ClosureConfig::new().merge_adjacent(true).gap(1),
        ClosureConfig::new().merge_adjacent(true).gap(64).reserve(7),
    ];
    for (ix, config) in configs.into_iter().enumerate() {
        let (serial, parallel) = build_pair(&g, config);
        assert_identical(&serial, &parallel, &format!("config #{ix}"));
        parallel.verify().unwrap();
    }
}

#[test]
fn all_strategies_build_identically() {
    let g = generators::random_dag(generators::RandomDagConfig {
        nodes: 80,
        avg_out_degree: 2.0,
        seed: 3,
    });
    for strat in [
        CoverStrategy::Optimal,
        CoverStrategy::FirstParent,
        CoverStrategy::Random { seed: 42 },
        CoverStrategy::Deepest,
    ] {
        let (serial, parallel) = build_pair(&g, ClosureConfig::new().strategy(strat));
        assert_identical(&serial, &parallel, &format!("{strat:?}"));
    }
}

#[test]
fn threads_zero_means_auto_and_stays_identical() {
    let g = generators::random_dag(generators::RandomDagConfig {
        nodes: 90,
        avg_out_degree: 2.0,
        seed: 12,
    });
    let serial = ClosureConfig::new().threads(1).build(&g).unwrap();
    let auto = ClosureConfig::new().threads(0).build(&g).unwrap();
    assert_identical(&serial, &auto, "threads(0)");
}

#[test]
fn relabel_and_rebuild_stay_identical_under_threads() {
    let g = generators::random_dag(generators::RandomDagConfig {
        nodes: 70,
        avg_out_degree: 2.5,
        seed: 9,
    });
    let mut serial = ClosureConfig::new().threads(1).build(&g).unwrap();
    let mut parallel = ClosureConfig::new().threads(4).build(&g).unwrap();
    serial.relabel();
    parallel.relabel();
    assert_identical(&serial, &parallel, "after relabel");
    serial.rebuild();
    parallel.rebuild();
    assert_identical(&serial, &parallel, "after rebuild");
}

#[test]
fn reaches_batch_matches_pointwise_queries() {
    let g = generators::random_dag(generators::RandomDagConfig {
        nodes: 150,
        avg_out_degree: 2.0,
        seed: 5,
    });
    let c = ClosureConfig::new().threads(4).build(&g).unwrap();
    let pairs: Vec<(NodeId, NodeId)> = (0..g.node_count())
        .flat_map(|u| {
            (0..g.node_count())
                .step_by(3)
                .map(move |v| (NodeId::from_index(u), NodeId::from_index(v)))
        })
        .collect();
    let batch = c.reaches_batch(&pairs);
    assert_eq!(batch.len(), pairs.len());
    for (&(src, dst), &got) in pairs.iter().zip(&batch) {
        assert_eq!(got, c.reaches(src, dst), "batch answer for ({src:?},{dst:?})");
    }
    assert!(c.reaches_batch(&[]).is_empty());
}

#[test]
fn parallel_predecessors_and_stats_match_serial() {
    let g = generators::random_dag(generators::RandomDagConfig {
        nodes: 130,
        avg_out_degree: 3.0,
        seed: 8,
    });
    let serial = ClosureConfig::new().threads(1).build(&g).unwrap();
    let parallel = ClosureConfig::new().threads(4).build(&g).unwrap();
    for v in g.nodes() {
        assert_eq!(
            serial.predecessors(v),
            parallel.predecessors(v),
            "predecessors of {v:?}"
        );
    }
    assert_eq!(serial.stats(), parallel.stats());
}
