//! Binary serialization of a compressed closure.
//!
//! A materialized closure is a *persistent* artifact — "compression is a
//! one-time activity, and once the compressed closure has been obtained, it
//! can be repeatedly used" (§3.2) — so it must survive process restarts
//! without being recomputed. The format is a versioned little-endian byte
//! stream carrying the base relation, the tree cover, the numbering
//! (including tombstones and consumed reserve tails) and every interval
//! set, so a round-trip restores the closure bit-for-bit, mid-update-epoch
//! state included.

use std::fmt;
use std::io::{self, Write};

use tc_graph::{DiGraph, NodeId};
use tc_interval::{Interval, IntervalSet, NumberLine};

use crate::labeling::Labeling;
use crate::treecover::{CoverStrategy, TreeCover};
use crate::{ClosureConfig, CompressedClosure};

const MAGIC: &[u8; 4] = b"ITC1";
/// Tag of the optional runtime-config footer appended after the number
/// line. Streams written before the footer existed simply end there;
/// decoding treats an absent footer as the old defaults (serial, thawed),
/// which keeps every previously written stream valid.
const CONFIG_FOOTER: &[u8; 4] = b"CFG1";
/// Tag of the optional hybrid-threshold footer, written after the `CFG1`
/// fields only when [`ClosureConfig::hybrid`] is set (threshold !=
/// `usize::MAX`). Non-hybrid closures keep producing byte-identical
/// streams, and old streams decode with the hybrid disabled.
const HYBRID_FOOTER: &[u8; 4] = b"HYB1";
const NO_PARENT: u32 = u32::MAX;
const TOMBSTONE: u32 = u32::MAX;

/// FNV-1a, 64-bit: integrity check over the payload so bit-level corruption
/// cannot silently alter reachability answers. Public so sibling codecs
/// (the server's dictionary section) and the fuzzer's mutation mode can
/// share the exact trailer convention.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(data);
    h.finish()
}

/// Incremental FNV-1a, 64-bit: feed bytes in any chunking and get the same
/// digest as [`fnv1a`] over their concatenation. This is what lets the
/// streaming encode paths (closure save, plane section) compute their
/// trailer on the fly instead of materializing the stream first.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// A fresh accumulator at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf29ce484222325u64)
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        let mut hash = self.0;
        for &b in data {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        self.0 = hash;
    }

    /// The digest so far (the accumulator is still usable afterwards).
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// An [`io::Write`] adapter that FNV-accumulates and counts everything
/// written through it. The streaming save paths wrap their sink in this, so
/// the integrity trailer falls out of the write pass itself.
#[derive(Debug)]
pub struct HashingWriter<W> {
    inner: W,
    hash: Fnv1a,
    written: u64,
}

impl<W: Write> HashingWriter<W> {
    /// Wraps `inner` with a fresh accumulator.
    pub fn new(inner: W) -> Self {
        HashingWriter { inner, hash: Fnv1a::new(), written: 0 }
    }

    /// Digest of everything written so far.
    pub fn digest(&self) -> u64 {
        self.hash.finish()
    }

    /// Bytes written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Unwraps the inner sink.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hash.update(&buf[..n]);
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Errors from decoding a serialized closure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Missing or wrong magic/version header.
    BadMagic,
    /// The stream ended mid-field.
    Truncated,
    /// A structural invariant failed while rebuilding (corrupt stream).
    Corrupt(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not an interval-tc closure stream"),
            DecodeError::Truncated => write!(f, "closure stream is truncated"),
            DecodeError::Corrupt(what) => write!(f, "closure stream is corrupt: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Writer<W> {
    sink: HashingWriter<W>,
}

impl<W: Write> Writer<W> {
    fn bytes(&mut self, v: &[u8]) -> io::Result<()> {
        self.sink.write_all(v)
    }
    fn u8(&mut self, v: u8) -> io::Result<()> {
        self.sink.write_all(&[v])
    }
    fn u32(&mut self, v: u32) -> io::Result<()> {
        self.sink.write_all(&v.to_le_bytes())
    }
    fn u64(&mut self, v: u64) -> io::Result<()> {
        self.sink.write_all(&v.to_le_bytes())
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.data.len() {
            return Err(DecodeError::Truncated);
        }
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn done(&self) -> bool {
        self.pos == self.data.len()
    }
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

impl CompressedClosure {
    /// Serializes the closure (relation, cover, numbering, labels) to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.write_to(&mut buf).expect("writing to a Vec cannot fail");
        buf
    }

    /// Streams the closure's serialized form into any [`io::Write`] sink —
    /// the same bytes as [`CompressedClosure::to_bytes`], but without
    /// materializing the stream: the FNV-1a trailer is accumulated on the
    /// fly, so peak memory during a save is O(1) beyond the closure itself.
    pub fn write_to<W: Write>(&self, sink: W) -> io::Result<()> {
        let mut w = Writer { sink: HashingWriter::new(sink) };
        w.bytes(MAGIC)?;

        // Config.
        match self.config.strategy {
            CoverStrategy::Optimal => w.u8(0)?,
            CoverStrategy::FirstParent => w.u8(1)?,
            CoverStrategy::Random { seed } => {
                w.u8(2)?;
                w.u64(seed)?;
            }
            CoverStrategy::Deepest => w.u8(3)?,
        }
        w.u64(self.config.gap)?;
        w.u64(self.config.reserve)?;
        w.u8(self.config.merge_adjacent as u8)?;

        // Relation.
        let n = self.graph.node_count();
        w.u32(n as u32)?;
        for v in self.graph.nodes() {
            let succ = self.graph.successors(v);
            w.u32(succ.len() as u32)?;
            for s in succ {
                w.u32(s.0)?;
            }
        }

        // Tree cover (children order is recoverable: ascending id for the
        // builder strategies; explicit covers serialize their order).
        for v in self.graph.nodes() {
            w.u32(self.cover.parent(v).map_or(NO_PARENT, |p| p.0))?;
        }
        for v in self.graph.nodes() {
            let kids = self.cover.children(v);
            w.u32(kids.len() as u32)?;
            for k in kids {
                w.u32(k.0)?;
            }
        }

        // Labels.
        for ix in 0..n {
            w.u64(self.lab.post[ix])?;
            w.u64(self.lab.low[ix])?;
            w.u64(self.lab.advertised_hi[ix])?;
        }
        w.u64(self.lab.reserve)?;
        for ix in 0..n {
            let set = &self.lab.sets[ix];
            w.u32(set.count() as u32)?;
            for iv in set.iter() {
                w.u64(iv.lo())?;
                w.u64(iv.hi())?;
            }
        }

        // Number line, tombstones included, ascending — streamed straight
        // off the line instead of staging a Vec of entries.
        w.u64(self.lab.line.total_count() as u64)?;
        let mut cursor = if self.lab.line.is_used(0) {
            Some(0) // `next_used` is exclusive, and 0 itself can be occupied
        } else {
            self.lab.line.next_used(0)
        };
        while let Some(num) = cursor {
            w.u64(num)?;
            w.u32(self.lab.line.node_at(num).unwrap_or(TOMBSTONE))?;
            cursor = self.lab.line.next_used(num);
        }

        // Runtime-config footer: the knobs that are not closure *state* but
        // should survive a save/load cycle all the same (a service restored
        // from disk wants its thread count and freeze policy back).
        w.bytes(CONFIG_FOOTER)?;
        w.u64(self.config.threads as u64)?;
        w.u8(self.config.auto_freeze as u8)?;
        if self.config.hybrid_threshold != usize::MAX {
            w.bytes(HYBRID_FOOTER)?;
            w.u64(self.config.hybrid_threshold as u64)?;
        }

        let checksum = w.sink.digest();
        let mut sink = w.sink.into_inner();
        sink.write_all(&checksum.to_le_bytes())?;
        sink.flush()
    }

    /// Restores a closure serialized with [`CompressedClosure::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Self, DecodeError> {
        // Verify and strip the trailing checksum first.
        if data.len() < 12 {
            return Err(DecodeError::Truncated);
        }
        let (payload, tail) = data.split_at(data.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
        if fnv1a(payload) != stored {
            return Err(DecodeError::Corrupt("checksum mismatch"));
        }
        let mut r = Reader { data: payload, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(DecodeError::BadMagic);
        }

        let strategy = match r.u8()? {
            0 => CoverStrategy::Optimal,
            1 => CoverStrategy::FirstParent,
            2 => CoverStrategy::Random { seed: r.u64()? },
            3 => CoverStrategy::Deepest,
            _ => return Err(DecodeError::Corrupt("unknown cover strategy")),
        };
        let gap = r.u64()?;
        let reserve = r.u64()?;
        let merge_adjacent = r.u8()? != 0;
        if gap == 0 || gap <= 2 * reserve {
            return Err(DecodeError::Corrupt("invalid gap/reserve"));
        }
        let mut config = ClosureConfig {
            strategy,
            gap,
            reserve,
            merge_adjacent,
            // Runtime knobs; restored from the config footer at the end of
            // the stream when present, defaulting to serial and thawed for
            // streams written before the footer existed.
            threads: 1,
            auto_freeze: false,
            // Not serialized: scoped and global deletion recomputes yield
            // the same closure, so restored streams default to scoped.
            scoped_deletes: true,
            // Not serialized: whether to serve frozen snapshots out-of-core
            // is a property of the opening process, not the stream.
            paged_pool: 0,
            // Restored from the optional HYB1 footer when present.
            hybrid_threshold: usize::MAX,
        };

        // Relation.
        let n = r.u32()? as usize;
        // Every node costs at least 4 bytes (its degree word) before the
        // stream can end, so a declared count beyond that is corrupt — and
        // must be rejected *before* sizing any allocation by it, or a
        // 5-byte stream could demand gigabytes.
        if n > r.remaining() / 4 {
            return Err(DecodeError::Corrupt("node count exceeds stream"));
        }
        let mut graph = DiGraph::with_nodes(n);
        for v in 0..n as u32 {
            let deg = r.u32()? as usize;
            for _ in 0..deg {
                let d = r.u32()?;
                if d as usize >= n {
                    return Err(DecodeError::Corrupt("edge endpoint out of range"));
                }
                graph
                    .try_add_edge(NodeId(v), NodeId(d))
                    .map_err(|_| DecodeError::Corrupt("invalid edge"))?;
            }
        }

        // Tree cover.
        let mut parents: Vec<Option<NodeId>> = Vec::with_capacity(n);
        for _ in 0..n {
            let p = r.u32()?;
            parents.push(if p == NO_PARENT {
                None
            } else if (p as usize) < n {
                Some(NodeId(p))
            } else {
                return Err(DecodeError::Corrupt("parent out of range"));
            });
        }
        let mut children: Vec<Vec<NodeId>> = Vec::with_capacity(n);
        for _ in 0..n {
            let k = r.u32()? as usize;
            if k > n {
                return Err(DecodeError::Corrupt("child count out of range"));
            }
            let mut kids = Vec::with_capacity(k);
            for _ in 0..k {
                let c = r.u32()?;
                if c as usize >= n {
                    return Err(DecodeError::Corrupt("child out of range"));
                }
                kids.push(NodeId(c));
            }
            children.push(kids);
        }
        let cover = TreeCover::from_raw(parents, children)
            .ok_or(DecodeError::Corrupt("inconsistent tree cover"))?;
        if !cover.check_consistency(&graph) {
            return Err(DecodeError::Corrupt("cover does not match relation"));
        }

        // Labels.
        let mut post = Vec::with_capacity(n);
        let mut low = Vec::with_capacity(n);
        let mut advertised_hi = Vec::with_capacity(n);
        for _ in 0..n {
            let p = r.u64()?;
            let l = r.u64()?;
            let a = r.u64()?;
            if l > p || a < p {
                return Err(DecodeError::Corrupt("label ordering violated"));
            }
            post.push(p);
            low.push(l);
            advertised_hi.push(a);
        }
        let lab_reserve = r.u64()?;
        let mut sets = Vec::with_capacity(n);
        #[allow(clippy::needless_range_loop)] // parallel-array reconstruction
        for ix in 0..n {
            let k = r.u32()? as usize;
            let mut set = IntervalSet::new();
            for _ in 0..k {
                let lo = r.u64()?;
                let hi = r.u64()?;
                if lo > hi {
                    return Err(DecodeError::Corrupt("inverted interval"));
                }
                set.insert(Interval::new(lo, hi));
            }
            if set.count() != k {
                return Err(DecodeError::Corrupt("interval set had subsumed members"));
            }
            if !set.contains_point(post[ix]) {
                return Err(DecodeError::Corrupt("node label misses its own number"));
            }
            sets.push(set);
        }

        // Number line. Each entry is 12 bytes on the wire; a count beyond
        // what the stream can still hold is corrupt, not a reason to loop.
        let entries = r.u64()? as usize;
        if entries > r.remaining() / 12 {
            return Err(DecodeError::Corrupt("number line count exceeds stream"));
        }
        let mut line = NumberLine::new();
        let mut live = 0usize;
        for _ in 0..entries {
            let num = r.u64()?;
            let owner = r.u32()?;
            if line.is_used(num) {
                // `NumberLine::assign` asserts uniqueness; a corrupt stream
                // must not be able to trip that assert.
                return Err(DecodeError::Corrupt("duplicate number on the line"));
            }
            if owner == TOMBSTONE {
                // Assign-then-tombstone reconstructs the tombstoned state.
                line.assign(num, 0);
                line.tombstone(num);
            } else {
                if owner as usize >= n || post[owner as usize] != num {
                    return Err(DecodeError::Corrupt("number line disagrees with labels"));
                }
                line.assign(num, owner);
                live += 1;
            }
        }
        if live != n {
            return Err(DecodeError::Corrupt("number line is missing live nodes"));
        }
        // Optional runtime-config footer (absent in old streams).
        if !r.done() {
            if r.take(4)? != CONFIG_FOOTER {
                return Err(DecodeError::Corrupt("trailing bytes"));
            }
            config.threads = r.u64()? as usize;
            config.auto_freeze = r.u8()? != 0;
            // Optional hybrid-threshold footer (absent when disabled).
            if !r.done() {
                if r.take(4)? != HYBRID_FOOTER {
                    return Err(DecodeError::Corrupt("trailing bytes"));
                }
                let threshold = r.u64()?;
                if threshold == u64::MAX {
                    return Err(DecodeError::Corrupt("hybrid footer with disabled threshold"));
                }
                config.hybrid_threshold = threshold as usize;
            }
            if !r.done() {
                return Err(DecodeError::Corrupt("trailing bytes"));
            }
        }

        let mut closure = CompressedClosure::from_parts(
            graph,
            cover,
            Labeling {
                post,
                low,
                advertised_hi,
                sets,
                line,
                reserve: lab_reserve,
            },
            config,
        );
        // An auto-freezing closure is never observed thawed; restore that
        // property immediately, exactly as `ClosureConfig::build` does.
        if closure.config().auto_freeze {
            closure.freeze();
        }
        Ok(closure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_graph::generators;

    fn sample() -> CompressedClosure {
        let g = generators::random_dag(generators::RandomDagConfig {
            nodes: 40,
            avg_out_degree: 2.0,
            seed: 6,
        });
        ClosureConfig::new().gap(32).reserve(3).build(&g).unwrap()
    }

    #[test]
    fn roundtrip_fresh_closure() {
        let c = sample();
        let bytes = c.to_bytes();
        let back = CompressedClosure::from_bytes(&bytes).unwrap();
        back.verify().unwrap();
        for v in c.graph().nodes() {
            assert_eq!(c.intervals(v), back.intervals(v));
            assert_eq!(c.post_number(v), back.post_number(v));
        }
        assert_eq!(back.to_bytes(), bytes, "re-serialization is stable");
    }

    #[test]
    fn roundtrip_mid_update_state() {
        let mut c = sample();
        // Mutate into an interesting state: insertions, a refinement, a
        // tree-arc deletion (tombstones!).
        let leaf = c.add_node_with_parents(&[NodeId(3)]).unwrap();
        let preds: Vec<NodeId> = c.graph().predecessors(leaf).to_vec();
        c.refine_insert(leaf, &preds).unwrap();
        let (s, d) = c
            .graph()
            .edges()
            .find(|&(s, d)| c.cover().is_tree_arc(s, d))
            .unwrap();
        c.remove_edge(s, d).unwrap();

        let back = CompressedClosure::from_bytes(&c.to_bytes()).unwrap();
        back.verify().unwrap();
        // Updates continue to work on the restored closure.
        let mut back = back;
        let extra = back.add_node_with_parents(&[leaf]).unwrap();
        assert!(back.reaches(NodeId(3), extra));
        back.verify().unwrap();
    }

    #[test]
    fn rejects_garbage() {
        // Too short to even carry a checksum.
        assert!(matches!(
            CompressedClosure::from_bytes(b"nope"),
            Err(DecodeError::Truncated)
        ));
        // Checksums out: truncation breaks the checksum before anything else.
        let mut bytes = sample().to_bytes();
        bytes.truncate(bytes.len() - 3);
        assert!(matches!(
            CompressedClosure::from_bytes(&bytes),
            Err(DecodeError::Corrupt("checksum mismatch"))
        ));
        // A well-checksummed stream with the wrong magic.
        let mut garbage = b"XXXXsome-other-format".to_vec();
        let sum = fnv1a(&garbage);
        garbage.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            CompressedClosure::from_bytes(&garbage),
            Err(DecodeError::BadMagic)
        ));
    }

    #[test]
    fn rejects_corruption() {
        let c = sample();
        let bytes = c.to_bytes();
        // Flip bytes across the stream: every flip must either be rejected
        // by the decoder or still yield a *semantically valid* closure
        // (e.g. a flipped config byte). Silent reachability corruption is
        // the failure mode being tested against.
        for pos in (8..bytes.len()).step_by(bytes.len() / 23) {
            let mut broken = bytes.clone();
            broken[pos] ^= 0xFF;
            if let Ok(back) = CompressedClosure::from_bytes(&broken) {
                back.verify()
                    .unwrap_or_else(|e| panic!("silent corruption at byte {pos}: {e}"));
            }
        }
    }

    /// Re-signs a mutated stream so it passes the trailer check — the
    /// mutation-campaign trick, reproduced here for the shrunk regressions.
    fn refix(bytes: &mut [u8]) {
        let split = bytes.len() - 8;
        let sum = fnv1a(&bytes[..split]);
        bytes[split..].copy_from_slice(&sum.to_le_bytes());
    }

    /// Shrunk mutation-campaign reproducer: a stream declaring u32::MAX
    /// nodes used to size a multi-gigabyte graph allocation before reading
    /// another byte. The count must be rejected against the bytes actually
    /// present.
    #[test]
    fn oversized_node_count_is_rejected_not_allocated() {
        let mut bytes = sample().to_bytes();
        // Node count sits right after magic(4) + strategy tag(1) + gap(8) +
        // reserve(8) + merge flag(1) for the non-seeded strategies.
        let off = 22;
        assert_eq!(
            u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()),
            40,
            "node-count offset moved; update this reproducer"
        );
        bytes[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        refix(&mut bytes);
        assert_eq!(
            CompressedClosure::from_bytes(&bytes).err(),
            Some(DecodeError::Corrupt("node count exceeds stream"))
        );
    }

    /// Shrunk mutation-campaign reproducer: a duplicated number-line entry
    /// used to trip `NumberLine::assign`'s uniqueness assert — a panic on
    /// attacker-controlled bytes.
    #[test]
    fn duplicate_number_line_entry_is_rejected_not_a_panic() {
        let bytes = sample().to_bytes();
        // Layout from the tail: checksum(8), footer(4+8+1), then the
        // number-line section ending with the last 12-byte entry.
        let footer = 8 + 13;
        let tail = bytes.len() - footer;
        let entry = bytes[tail - 12..tail].to_vec();
        let cnt_off = {
            // The count field precedes the entries; scan for it by decoding
            // the count and checking it spans exactly to `tail`.
            let mut off = None;
            for probe in (12..tail).rev() {
                let c = u64::from_le_bytes(bytes[probe - 8..probe].try_into().unwrap());
                if let Some(span) = c.checked_mul(12) {
                    if span as usize == tail - probe {
                        off = Some(probe - 8);
                        break;
                    }
                }
            }
            off.expect("number-line count field located")
        };
        let count = u64::from_le_bytes(bytes[cnt_off..cnt_off + 8].try_into().unwrap());
        let mut broken = Vec::new();
        broken.extend_from_slice(&bytes[..cnt_off]);
        broken.extend_from_slice(&(count + 1).to_le_bytes());
        broken.extend_from_slice(&bytes[cnt_off + 8..tail]);
        broken.extend_from_slice(&entry); // the duplicate
        broken.extend_from_slice(&bytes[tail..]);
        refix(&mut broken);
        assert_eq!(
            CompressedClosure::from_bytes(&broken).err(),
            Some(DecodeError::Corrupt("duplicate number on the line"))
        );
    }

    /// Shrunk mutation-campaign reproducer: a number-line count of u64::MAX
    /// must be bounded by the stream, not looped over.
    #[test]
    fn oversized_number_line_count_is_rejected() {
        let bytes = sample().to_bytes();
        let footer = 8 + 13;
        let tail = bytes.len() - footer;
        let mut cnt_off = None;
        for probe in (12..tail).rev() {
            let c = u64::from_le_bytes(bytes[probe - 8..probe].try_into().unwrap());
            if let Some(span) = c.checked_mul(12) {
                if span as usize == tail - probe {
                    cnt_off = Some(probe - 8);
                    break;
                }
            }
        }
        let cnt_off = cnt_off.expect("number-line count field located");
        let mut broken = bytes.clone();
        broken[cnt_off..cnt_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        refix(&mut broken);
        assert_eq!(
            CompressedClosure::from_bytes(&broken).err(),
            Some(DecodeError::Corrupt("number line count exceeds stream"))
        );
    }

    #[test]
    fn config_footer_roundtrips_runtime_knobs() {
        let g = generators::random_dag(generators::RandomDagConfig {
            nodes: 30,
            avg_out_degree: 2.0,
            seed: 9,
        });
        let c = ClosureConfig::new().threads(3).auto_freeze(true).build(&g).unwrap();
        assert!(c.is_frozen());
        let back = CompressedClosure::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back.config().threads, 3);
        assert!(back.config().auto_freeze);
        assert!(back.is_frozen(), "auto-freeze restores the frozen plane on decode");
        back.verify().unwrap();
        assert_eq!(back.to_bytes(), c.to_bytes(), "footer re-serialization is stable");
    }

    #[test]
    fn streams_without_config_footer_still_decode() {
        // Reconstruct the pre-footer format: strip the 13-byte footer and
        // the checksum, then re-checksum the shortened payload.
        let c = sample();
        let bytes = c.to_bytes();
        let payload = &bytes[..bytes.len() - 8 - 13];
        assert_eq!(&bytes[payload.len()..payload.len() + 4], CONFIG_FOOTER);
        let mut old = payload.to_vec();
        let sum = fnv1a(&old);
        old.extend_from_slice(&sum.to_le_bytes());
        let back = CompressedClosure::from_bytes(&old).unwrap();
        back.verify().unwrap();
        assert_eq!(back.config().threads, 1, "old streams default to serial");
        assert!(!back.config().auto_freeze);
        assert!(!back.is_frozen());
        for v in c.graph().nodes() {
            assert_eq!(c.intervals(v), back.intervals(v));
        }
    }

    #[test]
    fn empty_closure_roundtrips() {
        let c = CompressedClosure::build(&DiGraph::new()).unwrap();
        let back = CompressedClosure::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back.node_count(), 0);
    }
}
