//! Brute-force tree-cover optimality oracle (Theorem 1 validation).
//!
//! Theorem 1 claims Alg1's tree cover minimizes the total interval count
//! over *all* tree covers. This module enumerates every tree cover of a
//! (small) graph, builds the closure over each, and reports the minimum —
//! the oracle our tests and the `optimality` experiment compare Alg1
//! against.

use tc_graph::DiGraph;

use crate::treecover::{enumerate_covers, TreeCover};
use crate::ClosureConfig;

/// The outcome of an exhaustive tree-cover search.
#[derive(Debug, Clone)]
pub struct BruteForceResult {
    /// Minimum total interval count over all covers.
    pub min_intervals: usize,
    /// Maximum total interval count over all covers (how bad a cover can be).
    pub max_intervals: usize,
    /// Number of covers examined.
    pub covers_examined: usize,
    /// One cover achieving the minimum.
    pub best_cover: TreeCover,
}

/// Exhaustively evaluates every tree cover of `g` (without interval
/// merging, matching the paper: "Two adjacent intervals count as two
/// intervals for purposes of the following algorithm, lemmas, and theorem").
///
/// Returns `None` if the number of covers exceeds `limit`.
pub fn exhaustive_min_intervals(g: &DiGraph, limit: usize) -> Option<BruteForceResult> {
    let covers = enumerate_covers(g, limit)?;
    let config = ClosureConfig::new().gap(1);
    let mut best: Option<(usize, TreeCover)> = None;
    let mut max = 0usize;
    let examined = covers.len();
    for cover in covers {
        let closure = config
            .build_with_cover(g, cover.clone())
            .expect("enumerated covers exist only for DAGs");
        let count = closure.total_intervals();
        max = max.max(count);
        match &best {
            Some((m, _)) if *m <= count => {}
            _ => best = Some((count, cover)),
        }
    }
    let (min_intervals, best_cover) = best?;
    Some(BruteForceResult {
        min_intervals,
        max_intervals: max,
        covers_examined: examined,
        best_cover,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompressedClosure;
    use tc_graph::generators;

    fn assert_alg1_optimal(g: &DiGraph, limit: usize) {
        let Some(brute) = exhaustive_min_intervals(g, limit) else {
            panic!("graph too large for brute force");
        };
        let alg1 = CompressedClosure::build(g).unwrap().total_intervals();
        assert_eq!(
            alg1, brute.min_intervals,
            "Alg1 gave {alg1}, brute force found {} over {} covers",
            brute.min_intervals, brute.covers_examined
        );
    }

    #[test]
    fn theorem1_on_hand_graphs() {
        for edges in [
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
            vec![(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)],
            vec![(0, 2), (1, 2), (0, 3), (1, 3)],          // bipartite K22
            vec![(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)],  // chain + chords
        ] {
            let g = DiGraph::from_edges(edges.clone());
            assert_alg1_optimal(&g, 100_000);
        }
    }

    #[test]
    fn theorem1_on_all_five_node_dags() {
        // Every DAG over 5 nodes with the fixed topological order: 2^10 masks.
        for mask in generators::enumerate_dag_masks(5) {
            let g = generators::dag_from_mask(5, mask);
            let Some(brute) = exhaustive_min_intervals(&g, 50_000) else {
                continue;
            };
            let alg1 = CompressedClosure::build(&g).unwrap().total_intervals();
            assert_eq!(alg1, brute.min_intervals, "mask {mask:#b}");
        }
    }

    #[test]
    fn theorem1_on_random_graphs() {
        for seed in 0..20 {
            let g = generators::random_dag(generators::RandomDagConfig {
                nodes: 8,
                avg_out_degree: 1.8,
                seed,
            });
            if let Some(brute) = exhaustive_min_intervals(&g, 200_000) {
                let alg1 = CompressedClosure::build(&g).unwrap().total_intervals();
                assert_eq!(alg1, brute.min_intervals, "seed {seed}");
            }
        }
    }

    #[test]
    fn best_cover_rebuilds_to_min() {
        let g = DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3), (1, 4), (2, 4)]);
        let brute = exhaustive_min_intervals(&g, 100_000).unwrap();
        let rebuilt = ClosureConfig::new()
            .gap(1)
            .build_with_cover(&g, brute.best_cover.clone())
            .unwrap();
        assert_eq!(rebuilt.total_intervals(), brute.min_intervals);
        assert!(brute.max_intervals >= brute.min_intervals);
    }

    #[test]
    fn limit_is_respected() {
        let g = generators::bipartite_worst(5, 5); // 5^5 = 3125 covers
        assert!(exhaustive_min_intervals(&g, 100).is_none());
        assert!(exhaustive_min_intervals(&g, 5000).is_some());
    }
}
