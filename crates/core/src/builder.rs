//! Closure construction configuration.

use tc_graph::{topo, DiGraph};

use crate::closure::CompressedClosure;
use crate::labeling::Labeling;
use crate::parallel;
use crate::propagate::{propagate_all, propagate_all_levels};
use crate::treecover::{optimal_cover_levels, CoverStrategy, TreeCover};
use crate::DEFAULT_GAP;

/// Configuration for building a [`CompressedClosure`].
///
/// ```
/// use tc_core::{ClosureConfig, CoverStrategy};
/// use tc_graph::DiGraph;
///
/// let g = DiGraph::from_edges([(0, 1), (1, 2), (0, 2)]);
/// let closure = ClosureConfig::new()
///     .strategy(CoverStrategy::Optimal)
///     .gap(1 << 16)
///     .merge_adjacent(true)
///     .build(&g)
///     .unwrap();
/// assert!(closure.reaches(0.into(), 2.into()));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ClosureConfig {
    pub(crate) strategy: CoverStrategy,
    pub(crate) gap: u64,
    pub(crate) reserve: u64,
    pub(crate) merge_adjacent: bool,
    pub(crate) threads: usize,
    pub(crate) auto_freeze: bool,
    pub(crate) scoped_deletes: bool,
    /// Buffer-pool pages for out-of-core freezes; 0 freezes in memory.
    pub(crate) paged_pool: usize,
    /// Merged-interval count above which a freeze gives a node a bitset
    /// row instead of an interval row; `usize::MAX` disables the hybrid.
    pub(crate) hybrid_threshold: usize,
}

impl Default for ClosureConfig {
    /// Optimal (Alg1) cover, the [`DEFAULT_GAP`] spacing, no refinement
    /// reserve, no adjacent-interval merging — the configuration the paper's
    /// §3.3 experiments use (merging is evaluated separately and found to
    /// save < 5%).
    fn default() -> Self {
        ClosureConfig {
            strategy: CoverStrategy::Optimal,
            gap: DEFAULT_GAP,
            reserve: 0,
            merge_adjacent: false,
            threads: 1,
            auto_freeze: false,
            scoped_deletes: true,
            paged_pool: 0,
            hybrid_threshold: usize::MAX,
        }
    }
}

impl ClosureConfig {
    /// Default configuration (see [`ClosureConfig::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the tree-cover strategy.
    pub fn strategy(mut self, strategy: CoverStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the spacing between consecutive postorder numbers. `1` gives the
    /// paper's §3 contiguous numbering (no room for updates); larger values
    /// leave gaps for incremental insertion (§4.1).
    ///
    /// Must satisfy `gap >= 2 * (reserve + 1)` at build time.
    pub fn gap(mut self, gap: u64) -> Self {
        assert!(gap >= 1, "gap must be positive");
        self.gap = gap;
        self
    }

    /// Sets the per-node refinement reserve (§4.1): a tail of `reserve`
    /// numbers above each postorder number into which
    /// [`CompressedClosure::refine_insert`] can place new nodes without any
    /// interval propagation.
    pub fn reserve(mut self, reserve: u64) -> Self {
        self.reserve = reserve;
        self
    }

    /// Enables the §3.2 "Improvements" post-pass that merges adjacent and
    /// overlapping intervals.
    pub fn merge_adjacent(mut self, enable: bool) -> Self {
        self.merge_adjacent = enable;
        self
    }

    /// Sets the worker-thread count for construction and relabeling sweeps.
    ///
    /// `1` (the default) runs the classic serial algorithms; `0` means one
    /// worker per available CPU; anything else is taken literally. With more
    /// than one thread, the Alg1 cover computation and the interval
    /// propagation sweep process each topological level's nodes in parallel,
    /// producing an identical closure (same cover, same labeling,
    /// bit-identical interval sets) — see DESIGN.md, "Parallel
    /// construction".
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Restricts deletion recomputes to the affected region (§4.2 locality:
    /// only nodes that can reach the deletion site can change). On by
    /// default; `false` restores the historical global sweep, which the
    /// differential fuzzer keeps as a cross-check oracle. Both settings
    /// produce identical reachability; see DESIGN.md, "Scoped deletion
    /// recompute".
    pub fn scoped_deletes(mut self, enable: bool) -> Self {
        self.scoped_deletes = enable;
        self
    }

    /// Serves frozen snapshots *out-of-core*: [`CompressedClosure::freeze`]
    /// streams the plane to a temp file as a `PLN1` section and answers
    /// queries through a `pool_pages`-page buffer pool
    /// ([`crate::PagedPlane`]) instead of building the in-memory
    /// [`crate::QueryPlane`]. Answers are bit-identical either way; peak
    /// freeze RSS and steady-state memory drop to the pool size plus the
    /// stabbing triples. `0` (the default) keeps freezes in memory.
    pub fn paged(mut self, pool_pages: usize) -> Self {
        self.paged_pool = pool_pages;
        self
    }

    /// Enables the *hybrid reachability oracle* on subsequent freezes: any
    /// node whose rank-compressed row would hold more than `threshold`
    /// merged intervals gets a word-aligned bitset row instead, turning its
    /// `reaches` probe into one word test however fragmented its successor
    /// set is. Negative-cutoff labels are consulted first in all modes, so
    /// most unreachable pairs never touch a row at all. `usize::MAX` (the
    /// default) keeps freezes pure-interval; `0` gives every node a bitset
    /// row. Answers are bit-identical at any threshold — see DESIGN.md,
    /// "Hybrid oracle".
    pub fn hybrid(mut self, threshold: usize) -> Self {
        self.hybrid_threshold = threshold;
        self
    }

    /// Freezes a [`crate::QueryPlane`] as soon as construction finishes, so
    /// the closure starts out answering queries from the read-optimized
    /// snapshot. [`CompressedClosure::rebuild`] inherits this, re-freezing
    /// after every rebuild; incremental updates still invalidate the plane
    /// (see DESIGN.md, "Frozen query plane") and do *not* re-freeze.
    pub fn auto_freeze(mut self, enable: bool) -> Self {
        self.auto_freeze = enable;
        self
    }

    /// Builds the compressed closure of `g`.
    ///
    /// Fails with a [`topo::CycleError`] if `g` is cyclic — wrap cyclic
    /// graphs with [`crate::cyclic::CyclicClosure`] instead.
    pub fn build(self, g: &DiGraph) -> Result<CompressedClosure, topo::CycleError> {
        let threads = parallel::effective_threads(self.threads);
        if threads > 1 {
            let levels = topo::levels(g)?;
            let cover = match self.strategy {
                CoverStrategy::Optimal => optimal_cover_levels(g, &levels, threads),
                other => {
                    let order = topo::topo_sort(g)?;
                    other.compute(g, &order)
                }
            };
            let mut lab = Labeling::assign(&cover, self.gap, self.reserve);
            propagate_all_levels(g, &levels, &mut lab, threads);
            return Ok(self.finish(g, cover, lab));
        }
        let order = topo::topo_sort(g)?;
        let cover = self.strategy.compute(g, &order);
        Ok(self.build_parts(g, cover, &order))
    }

    /// Builds the closure over an explicit tree cover (used by the
    /// brute-force optimality oracle and the Fig 3.8 order-dependence
    /// experiments).
    pub fn build_with_cover(
        self,
        g: &DiGraph,
        cover: TreeCover,
    ) -> Result<CompressedClosure, topo::CycleError> {
        let threads = parallel::effective_threads(self.threads);
        if threads > 1 {
            let levels = topo::levels(g)?;
            let mut lab = Labeling::assign(&cover, self.gap, self.reserve);
            propagate_all_levels(g, &levels, &mut lab, threads);
            return Ok(self.finish(g, cover, lab));
        }
        let order = topo::topo_sort(g)?;
        Ok(self.build_parts(g, cover, &order))
    }

    fn build_parts(
        self,
        g: &DiGraph,
        cover: TreeCover,
        order: &[tc_graph::NodeId],
    ) -> CompressedClosure {
        let mut lab = Labeling::assign(&cover, self.gap, self.reserve);
        propagate_all(g, order, &mut lab);
        self.finish(g, cover, lab)
    }

    fn finish(self, g: &DiGraph, cover: TreeCover, mut lab: Labeling) -> CompressedClosure {
        if self.merge_adjacent {
            for set in &mut lab.sets {
                set.merge_adjacent();
            }
        }
        let mut closure = CompressedClosure::from_parts(g.clone(), cover, lab, self);
        if self.auto_freeze {
            closure.freeze();
        }
        closure
    }
}
