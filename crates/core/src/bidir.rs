//! Bidirectional closure: fast predecessor queries.
//!
//! [`crate::CompressedClosure::predecessors`] scans every node's interval
//! set (O(n log k)). Workloads that ask "who reaches v?" as often as "what
//! does u reach?" — the *where-used* query of parts databases, the
//! *ancestors* query of IS-A hierarchies — want the same lookup speed in
//! both directions. [`BiClosure`] maintains two compressed closures, one
//! over the relation and one over its reverse, and keeps them consistent
//! under the §4 incremental updates.

use tc_graph::{topo, DiGraph, NodeId};

use crate::updates::UpdateError;
use crate::{ClosureConfig, CompressedClosure};

/// A pair of compressed closures over a relation and its reverse, giving
/// interval-lookup speed for successor *and* predecessor queries at twice
/// the storage.
///
/// ```
/// use tc_graph::{DiGraph, NodeId};
/// use tc_core::bidir::BiClosure;
///
/// let g = DiGraph::from_edges([(0, 1), (1, 2), (0, 3)]);
/// let bi = BiClosure::build(&g).unwrap();
/// assert!(bi.reaches(NodeId(0), NodeId(2)));
/// assert_eq!(bi.predecessors(NodeId(2)).len(), 3); // {0, 1, 2} reflexive
/// ```
#[derive(Debug, Clone)]
pub struct BiClosure {
    forward: CompressedClosure,
    reverse: CompressedClosure,
}

impl BiClosure {
    /// Builds both directions with the default configuration.
    pub fn build(g: &DiGraph) -> Result<Self, topo::CycleError> {
        Self::build_with(g, ClosureConfig::default())
    }

    /// Builds both directions with an explicit configuration.
    pub fn build_with(g: &DiGraph, config: ClosureConfig) -> Result<Self, topo::CycleError> {
        Ok(BiClosure {
            forward: config.build(g)?,
            reverse: config.build(&g.reversed())?,
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.forward.node_count()
    }

    /// Whether `src` reaches `dst` (reflexive). One forward lookup.
    pub fn reaches(&self, src: NodeId, dst: NodeId) -> bool {
        self.forward.reaches(src, dst)
    }

    /// All nodes reachable from `node` (including itself).
    pub fn successors(&self, node: NodeId) -> Vec<NodeId> {
        self.forward.successors(node)
    }

    /// All nodes reaching `node` (including itself) — one *reverse* decode
    /// instead of a full scan.
    pub fn predecessors(&self, node: NodeId) -> Vec<NodeId> {
        self.reverse.successors(node)
    }

    /// Count of nodes reaching `node` (including itself).
    pub fn predecessor_count(&self, node: NodeId) -> usize {
        self.reverse.successor_count(node)
    }

    /// Freezes a read-optimized [`crate::QueryPlane`] on *both* directions
    /// (see [`CompressedClosure::freeze`]). Any subsequent update thaws both
    /// planes again.
    pub fn freeze(&mut self) {
        self.forward.freeze();
        self.reverse.freeze();
    }

    /// Drops both planes, returning to the mutable query paths.
    pub fn thaw(&mut self) {
        self.forward.thaw();
        self.reverse.thaw();
    }

    /// Whether both directions currently hold a frozen plane.
    pub fn is_frozen(&self) -> bool {
        self.forward.is_frozen() && self.reverse.is_frozen()
    }

    /// The forward closure.
    pub fn forward(&self) -> &CompressedClosure {
        &self.forward
    }

    /// The reverse closure.
    pub fn reverse(&self) -> &CompressedClosure {
        &self.reverse
    }

    /// Adds a node with incoming arcs from `parents` (mirrors
    /// [`CompressedClosure::add_node_with_parents`]).
    ///
    /// In the reverse closure the new node becomes a *source* with out-arcs
    /// to its parents: it is inserted as a root and each reversed arc is a
    /// non-tree arc propagated the usual way (its only holder is the new
    /// node itself, so the propagation is O(parents)).
    pub fn add_node_with_parents(&mut self, parents: &[NodeId]) -> Result<NodeId, UpdateError> {
        let node = self.forward.add_node_with_parents(parents)?;
        let rev_node = self
            .reverse
            .add_node_with_parents(&[])
            .expect("root insertion cannot fail");
        debug_assert_eq!(node, rev_node);
        let mut parents = parents.to_vec();
        parents.dedup();
        for p in parents {
            self.reverse
                .add_edge(node, p)
                .expect("forward accepted the arc, reverse must too");
        }
        Ok(node)
    }

    /// Adds the arc `src -> dst` in both directions.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) -> Result<bool, UpdateError> {
        let added = self.forward.add_edge(src, dst)?;
        if added {
            self.reverse
                .add_edge(dst, src)
                .expect("forward accepted the arc, reverse must too");
        }
        Ok(added)
    }

    /// Removes the arc `src -> dst` from both directions.
    pub fn remove_edge(&mut self, src: NodeId, dst: NodeId) -> Result<(), UpdateError> {
        self.forward.remove_edge(src, dst)?;
        self.reverse
            .remove_edge(dst, src)
            .expect("closures must stay in sync");
        Ok(())
    }

    /// Removes `node` with all incident arcs from both directions (mirrors
    /// [`CompressedClosure::remove_node`]).
    pub fn remove_node(&mut self, node: NodeId) -> Result<(), UpdateError> {
        self.forward.remove_node(node)?;
        self.reverse
            .remove_node(node)
            .expect("closures must stay in sync");
        Ok(())
    }

    /// Interposes a refinement node between `child` and its immediate
    /// predecessors (mirrors [`CompressedClosure::refine_insert`]).
    ///
    /// Forward, this is the paper's constant-time reserve-tail insertion.
    /// The reverse closure has no reserve tail to consume for `z` — there
    /// `z` is an ordinary new node with parent `child` (the reversed
    /// `z -> child` arc) plus reversed non-tree arcs `z -> p`, none of
    /// which can cycle: `p` precedes `child` in the forward order.
    pub fn refine_insert(&mut self, child: NodeId, parents: &[NodeId]) -> Result<NodeId, UpdateError> {
        let z = self.forward.refine_insert(child, parents)?;
        let rev_z = self
            .reverse
            .add_node_with_parents(&[child])
            .expect("forward accepted the refinement, reverse must too");
        debug_assert_eq!(z, rev_z);
        let mut want = parents.to_vec();
        want.sort_unstable();
        want.dedup();
        for p in want {
            self.reverse
                .add_edge(z, p)
                .expect("reversed refinement arc cannot cycle");
        }
        Ok(z)
    }

    /// Re-labels both directions (fresh gaps and reserves, tombstones
    /// dropped); reachability is unchanged.
    pub fn relabel(&mut self) {
        self.forward.relabel();
        self.reverse.relabel();
    }

    /// Rebuilds both directions from scratch with freshly optimized tree
    /// covers.
    pub fn rebuild(&mut self) {
        self.forward.rebuild();
        self.reverse.rebuild();
    }

    /// Sets the worker-thread count on both directions (see
    /// [`CompressedClosure::set_threads`]).
    pub fn set_threads(&mut self, threads: usize) {
        self.forward.set_threads(threads);
        self.reverse.set_threads(threads);
    }

    /// Combined storage statistics: forward plus reverse labels.
    pub fn total_intervals(&self) -> usize {
        self.forward.total_intervals() + self.reverse.total_intervals()
    }

    /// Exhaustively checks both directions against ground truth (tests
    /// only).
    pub fn verify(&self) -> Result<(), String> {
        self.forward.verify()?;
        self.reverse.verify()?;
        // And mutual consistency.
        for u in self.forward.graph().nodes() {
            for v in self.forward.graph().nodes() {
                if self.forward.reaches(u, v) != self.reverse.reaches(v, u) {
                    return Err(format!("forward/reverse disagree on ({u:?},{v:?})"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_graph::generators;

    fn diamond() -> DiGraph {
        DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
    }

    #[test]
    fn predecessors_by_lookup() {
        let bi = BiClosure::build(&diamond()).unwrap();
        let mut preds = bi.predecessors(NodeId(3));
        preds.sort_unstable();
        assert_eq!(preds, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(bi.predecessor_count(NodeId(4)), 5);
        bi.verify().unwrap();
    }

    #[test]
    fn matches_scan_based_predecessors() {
        let g = generators::random_dag(generators::RandomDagConfig {
            nodes: 60,
            avg_out_degree: 2.5,
            seed: 8,
        });
        let bi = BiClosure::build(&g).unwrap();
        for v in g.nodes() {
            let mut fast = bi.predecessors(v);
            fast.sort_unstable();
            let mut scan = bi.forward().predecessors(v);
            scan.sort_unstable();
            assert_eq!(fast, scan, "node {v:?}");
        }
    }

    #[test]
    fn updates_keep_both_directions_consistent() {
        let mut bi = BiClosure::build(&diamond()).unwrap();
        let n = bi.add_node_with_parents(&[NodeId(1), NodeId(4)]).unwrap();
        assert!(bi.reaches(NodeId(0), n));
        let mut preds = bi.predecessors(n);
        preds.sort_unstable();
        assert_eq!(preds.len(), 6, "everyone but node 2... plus reflexive");
        bi.verify().unwrap();

        bi.add_edge(NodeId(2), n).unwrap();
        assert!(bi.predecessors(n).contains(&NodeId(2)));
        bi.verify().unwrap();

        bi.remove_edge(NodeId(1), NodeId(3)).unwrap();
        assert!(bi.reaches(NodeId(0), NodeId(3)), "path through 2 survives");
        assert!(!bi.predecessors(NodeId(3)).contains(&NodeId(1)));
        bi.verify().unwrap();
    }

    #[test]
    fn frozen_biclosure_answers_identically_and_thaws_on_update() {
        let g = generators::random_dag(generators::RandomDagConfig {
            nodes: 40,
            avg_out_degree: 2.0,
            seed: 11,
        });
        let mut bi = BiClosure::build(&g).unwrap();
        let want_succ: Vec<_> = g.nodes().map(|v| bi.successors(v)).collect();
        let want_pred: Vec<_> = g.nodes().map(|v| bi.predecessors(v)).collect();
        bi.freeze();
        assert!(bi.is_frozen());
        for v in g.nodes() {
            assert_eq!(bi.successors(v), want_succ[v.index()]);
            assert_eq!(bi.predecessors(v), want_pred[v.index()]);
        }
        bi.verify().unwrap();
        // Any update must drop both planes.
        bi.add_node_with_parents(&[NodeId(0)]).unwrap();
        assert!(!bi.is_frozen());
        bi.verify().unwrap();
    }

    #[test]
    fn refine_remove_and_relabel_stay_consistent() {
        let mut bi =
            BiClosure::build_with(&diamond(), ClosureConfig::new().gap(16).reserve(3)).unwrap();
        // Refine node 3 under its exact predecessors {1, 2}.
        let z = bi.refine_insert(NodeId(3), &[NodeId(1), NodeId(2)]).unwrap();
        assert!(bi.reaches(NodeId(0), z));
        assert!(bi.predecessors(z).contains(&NodeId(2)));
        assert!(bi.reaches(z, NodeId(4)), "z -> 3 -> 4");
        bi.verify().unwrap();
        // Refinement with mismatched parents is rejected atomically.
        assert!(matches!(
            bi.refine_insert(NodeId(4), &[NodeId(0)]),
            Err(UpdateError::RefineParentsMismatch { .. })
        ));
        bi.verify().unwrap();
        // Remove a node; both directions must forget it.
        bi.remove_node(NodeId(1)).unwrap();
        assert!(!bi.predecessors(NodeId(4)).contains(&NodeId(1)));
        assert!(bi.reaches(NodeId(0), NodeId(4)), "path through 2 survives");
        bi.verify().unwrap();
        // Relabel and rebuild preserve semantics.
        bi.relabel();
        bi.verify().unwrap();
        bi.rebuild();
        bi.verify().unwrap();
    }

    #[test]
    fn cycle_rejection_is_atomic() {
        let mut bi = BiClosure::build(&diamond()).unwrap();
        assert!(matches!(
            bi.add_edge(NodeId(4), NodeId(0)),
            Err(UpdateError::WouldCreateCycle { .. })
        ));
        bi.verify().unwrap();
    }

    #[test]
    fn random_churn_on_both_directions() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::random_dag(generators::RandomDagConfig {
            nodes: 15,
            avg_out_degree: 1.5,
            seed: 4,
        });
        let mut bi = BiClosure::build_with(&g, ClosureConfig::new().gap(32)).unwrap();
        for step in 0..80 {
            let n = bi.node_count() as u32;
            match rng.random_range(0..3) {
                0 => {
                    let parents: Vec<NodeId> = (0..rng.random_range(0..3usize))
                        .map(|_| NodeId(rng.random_range(0..n)))
                        .collect();
                    bi.add_node_with_parents(&parents).unwrap();
                }
                1 => {
                    let a = NodeId(rng.random_range(0..n));
                    let b = NodeId(rng.random_range(0..n));
                    if a != b && !bi.reaches(b, a) {
                        bi.add_edge(a, b).unwrap();
                    }
                }
                _ => {
                    let edges: Vec<(NodeId, NodeId)> = bi.forward().graph().edges().collect();
                    if !edges.is_empty() {
                        let (s, d) = edges[rng.random_range(0..edges.len())];
                        bi.remove_edge(s, d).unwrap();
                    }
                }
            }
            if step % 20 == 19 {
                bi.verify().unwrap_or_else(|e| panic!("step {step}: {e}"));
            }
        }
        bi.verify().unwrap();
    }
}
