//! # tc-core — interval-labeled compressed transitive closure
//!
//! An implementation of the transitive-closure compression scheme of
//! *Agrawal, Borgida & Jagadish, "Efficient Management of Transitive
//! Relationships in Large Data and Knowledge Bases", SIGMOD 1989*.
//!
//! ## The scheme in brief
//!
//! Given an acyclic directed graph (a binary relation):
//!
//! 1. Cover the graph with a spanning tree (the **tree cover**). The paper's
//!    **Alg1** picks, for every node, the incoming arc from the immediate
//!    predecessor with the *largest predecessor set*; Theorem 1 proves this
//!    minimizes the total number of intervals over all tree covers.
//! 2. Number the nodes by **postorder** position in the tree cover and label
//!    every node with its **tree interval** `[lowest number in subtree, own
//!    number]`. Within a tree, `u` reaches `v` iff `post(v)` lies in `u`'s
//!    tree interval (Lemma 1) — one range comparison.
//! 3. Sweep the DAG in **reverse topological order**, adding, for every arc
//!    `(p, q)`, all of `q`'s intervals to `p` and discarding subsumed
//!    intervals. The extra intervals a node ends up with are its **non-tree
//!    intervals**; Lemma 4 characterizes how many survive.
//!
//! A reachability query `u →* v` is then a binary search of `u`'s interval
//! set for `post(v)`. Storage is `2 × (total interval count)` numbers, which
//! §3.3 shows is usually a small multiple of — and for denser graphs *less
//! than* — the size of the original relation.
//!
//! ## Incremental updates (§4)
//!
//! Postorder numbers are spaced with configurable **gaps** so the closure
//! absorbs updates without renumbering: new leaves take the midpoint of the
//! gap owned by their parent, new non-tree arcs propagate intervals to
//! predecessors with subsumption cut-off, and an optional per-node **reserve
//! region** makes IS-A *hierarchy refinement* a constant-time operation.
//! When gaps run out the closure relabels itself (keeping the tree cover);
//! [`CompressedClosure::rebuild`] recovers optimality after heavy churn.
//!
//! ## Quick start
//!
//! ```
//! use tc_graph::{DiGraph, NodeId};
//! use tc_core::CompressedClosure;
//!
//! // The IS-A fragment: device ⊃ {scanner, printer} ⊃ laser-printer …
//! let g = DiGraph::from_edges([
//!     (0, 1), // device -> printer
//!     (0, 2), // device -> scanner
//!     (1, 3), // printer -> laser-printer
//!     (2, 3), // scanner -> laser-printer (a multifunction device)
//! ]);
//! let closure = CompressedClosure::build(&g).unwrap();
//! assert!(closure.reaches(NodeId(0), NodeId(3)));
//! assert!(!closure.reaches(NodeId(1), NodeId(2)));
//! // Every reachability fact, decoded back out of the intervals:
//! assert_eq!(closure.successors(NodeId(0)).len(), 4); // reflexive
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod audit;
mod builder;
mod closure;
mod labeling;
mod parallel;
mod plane;
mod propagate;
mod stats;

pub mod bidir;
pub mod bruteforce;
pub mod codec;
pub mod cyclic;
pub mod paged;
pub mod pooled;
pub mod serve;
pub mod shard;
pub mod small_dag;
pub mod treecover;
pub mod updates;

pub use builder::ClosureConfig;
pub use closure::CompressedClosure;
pub use paged::{PagedClosure, PagedError, PagedIoStats, PagedPlane, DEFAULT_POOL_PAGES};
pub use plane::QueryPlane;
pub use serve::{ClosureService, ServiceClosed, ServiceConfig, ServiceOp, ServiceReader, ServiceSnapshot};
pub use shard::{ShardedClosure, ShardedReader, ShardedService, ShardedStats, SubmitOutcome};
pub use stats::ClosureStats;
pub use treecover::{CoverStrategy, TreeCover};
pub use updates::{EdgeDelta, UpdateError};

/// Default spacing between consecutive postorder numbers: the paper suggests
/// "dividing the range of integers that can be accommodated in one word by
/// the number of nodes"; with 64-bit numbers, 2³² leaves room for four
/// billion nodes *and* 2³² insertions between any two.
pub const DEFAULT_GAP: u64 = 1 << 32;
