//! Scoped-thread fan-out used by the level-parallel build sweeps and the
//! batch query engine.
//!
//! The workspace has a zero-dependency policy for the library crates, so
//! parallelism is plain `std::thread::scope`: split a slice into one
//! contiguous chunk per worker, run a chunk-mapping closure on each, and
//! stitch the outputs back together in input order. Workers only ever read
//! shared state and return owned results; all writes happen on the calling
//! thread after the join, which keeps `tc-core` free of `unsafe` and makes
//! parallel results bit-identical to serial ones by construction.

/// Resolves a user-facing thread-count knob: `0` means "one worker per
/// available CPU", anything else is taken literally.
pub(crate) fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        requested
    }
}

/// Work items per worker below which fan-out is not worth a thread spawn;
/// small inputs fall back to running the closure inline.
const MIN_ITEMS_PER_WORKER: usize = 16;

/// Applies `chunk_map` over `items` split into at most `threads` contiguous
/// chunks, concatenating the per-chunk outputs in input order. `chunk_map`
/// must produce exactly one output per input item, in item order — the
/// caller relies on `zip`-alignment of inputs and outputs.
///
/// With `threads <= 1` (or too few items to be worth spawning) the closure
/// runs inline on the whole slice, so the serial path stays allocation- and
/// synchronization-free.
pub(crate) fn map_chunks<T, U, F>(items: &[T], threads: usize, chunk_map: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> Vec<U> + Sync,
{
    let workers = threads
        .min(items.len() / MIN_ITEMS_PER_WORKER)
        .clamp(1, items.len().max(1));
    if workers == 1 {
        return chunk_map(items);
    }
    let chunk_size = items.len().div_ceil(workers);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let f = &chunk_map;
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || f(chunk)))
            .collect();
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
    });
    out
}

/// Fills a pre-sized output slice from `items` split into at most `threads`
/// contiguous chunks: worker `i` receives the `i`-th input chunk and the
/// matching `&mut` output chunk and writes results in place. Unlike
/// [`map_chunks`] there is no per-chunk `Vec` allocation and no
/// re-concatenation — the caller allocates once and the workers never touch
/// overlapping memory (disjoint `chunks_mut`), keeping the fan-out free of
/// `unsafe`.
///
/// # Panics
///
/// Panics if `items` and `out` differ in length.
pub(crate) fn map_chunks_into<T, U, F>(items: &[T], out: &mut [U], threads: usize, fill: F)
where
    T: Sync,
    U: Send,
    F: Fn(&[T], &mut [U]) + Sync,
{
    assert_eq!(items.len(), out.len(), "output must be pre-sized to the input");
    let workers = threads
        .min(items.len() / MIN_ITEMS_PER_WORKER)
        .clamp(1, items.len().max(1));
    if workers == 1 {
        fill(items, out);
        return;
    }
    let chunk_size = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let f = &fill;
        for (chunk, slots) in items.chunks(chunk_size).zip(out.chunks_mut(chunk_size)) {
            scope.spawn(move || f(chunk, slots));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_means_available_parallelism() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(7), 7);
    }

    #[test]
    fn outputs_keep_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let out = map_chunks(&items, threads, |chunk| {
                chunk.iter().map(|&x| x * 2).collect()
            });
            assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_chunks(&empty, 4, |c| c.to_vec()).is_empty());
        let one = [42u32];
        assert_eq!(map_chunks(&one, 4, |c| c.to_vec()), vec![42]);
    }
}
