//! Sharded closure: partition the DAG, scatter-gather queries, per-shard
//! writers.
//!
//! One `ClosureService` serializes every update through a single writer
//! thread and freezes one monolithic [`QueryPlane`](crate::QueryPlane) per
//! publish — the throughput ceiling ROADMAP item 3 measured. This module
//! splits the closure into independent pieces, in the spirit of DAG
//! decomposition reachability oracles (Kritikakis–Tollis; Jin's separate
//! small index for the cross-piece arcs):
//!
//! * [`topo::partition`](tc_graph::topo::partition) splits the node set by
//!   weakly connected component, with a level-cut fallback when one
//!   component dominates. Each shard gets its own [`CompressedClosure`]
//!   over the intra-shard arcs only.
//! * The few arcs that cross shards are kept in a **boundary closure**: the
//!   transitive closure of the tiny graph whose vertices are the cross-arc
//!   endpoints and whose arcs are the cross arcs plus the intra-shard
//!   reachability between same-shard endpoints. `reaches(src, dst)` then
//!   composes as *intra-shard probe* ∨ (*src → boundary exit* ∧ *boundary
//!   hop* ∧ *boundary entry → dst*).
//! * [`ShardedClosure`] is the offline form: exact, synchronous, boundary
//!   eagerly rebuilt after any mutation that can change it. Its §4 update
//!   vocabulary matches [`CompressedClosure`] (refinement degrades to a
//!   generic insert when the reserve runs dry or parents span shards — the
//!   answers are identical because refinement keeps the parent→child arcs).
//! * [`ShardedService`] is the online form: one [`ClosureService`] writer
//!   per shard, a front end that validates ops against an authoritative
//!   mirror (so per-shard writers never skip and never diverge from the
//!   routing tables), and a routing/boundary snapshot republished at every
//!   [`ShardedService::flush`]. Between flushes each shard is prefix
//!   consistent on its own and cross-shard composition may mix prefixes;
//!   after a flush the composed answers are exact.
//!
//! [`ShardedReader`] scatter-gathers batch probes: pairs are grouped by
//! shard and answered through the zero-alloc
//! [`ServiceSnapshot::reaches_batch_into`] path, then the leftovers take
//! the boundary route.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tc_graph::topo::{self, CycleError, Partition};
use tc_graph::{traverse, BitSet, DiGraph, NodeId};

use crate::serve::{
    ClosureService, ServiceClosed, ServiceConfig, ServiceOp, ServiceReader, ServiceSnapshot,
};
use crate::updates::UpdateError;
use crate::{ClosureConfig, CompressedClosure};

/// Global↔local id translation for a fixed shard assignment. Global ids
/// are dense (`0..node_count`); each shard's local ids are dense too, in
/// ascending global order, so new nodes append on both sides.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Routing {
    /// Global id → owning shard.
    shard_of: Vec<u32>,
    /// Global id → local id within the owning shard.
    local_of: Vec<u32>,
    /// Shard → local id → global id.
    global_of: Vec<Vec<NodeId>>,
}

impl Routing {
    fn from_partition(part: &Partition) -> Routing {
        let n = part.node_count();
        let shards = part.shards();
        let mut shard_of = vec![0u32; n];
        let mut local_of = vec![0u32; n];
        let mut global_of = vec![Vec::new(); shards];
        for g in 0..n {
            let v = NodeId(g as u32);
            let s = part.shard_of(v);
            shard_of[g] = s as u32;
            local_of[g] = global_of[s].len() as u32;
            global_of[s].push(v);
        }
        Routing { shard_of, local_of, global_of }
    }

    #[inline]
    fn node_count(&self) -> usize {
        self.shard_of.len()
    }

    #[inline]
    fn shards(&self) -> usize {
        self.global_of.len()
    }

    #[inline]
    fn shard(&self, g: NodeId) -> usize {
        self.shard_of[g.index()] as usize
    }

    #[inline]
    fn local(&self, g: NodeId) -> NodeId {
        NodeId(self.local_of[g.index()])
    }

    #[inline]
    fn global(&self, shard: usize, local: NodeId) -> NodeId {
        self.global_of[shard][local.index()]
    }

    /// Like [`Routing::global`], but total: readers pin the routing and
    /// the shard snapshots *independently*, so a shard snapshot can run
    /// ahead and decode locals this routing snapshot has never mapped.
    /// Those nodes are invisible until the next routing publish — `None`,
    /// not an out-of-bounds panic.
    #[inline]
    fn global_get(&self, shard: usize, local: NodeId) -> Option<NodeId> {
        self.global_of[shard].get(local.index()).copied()
    }

    /// Appends a fresh global id to `shard`; returns `(global, local)`.
    fn push_node(&mut self, shard: usize) -> (NodeId, NodeId) {
        let g = NodeId(self.shard_of.len() as u32);
        let l = NodeId(self.global_of[shard].len() as u32);
        self.shard_of.push(shard as u32);
        self.local_of.push(l.0);
        self.global_of[shard].push(g);
        (g, l)
    }

    /// The least-populated shard (ties break to the lowest index) — where
    /// parentless nodes land.
    fn smallest_shard(&self) -> usize {
        (0..self.shards())
            .min_by_key(|&s| (self.global_of[s].len(), s))
            .unwrap_or(0)
    }
}

/// The boundary closure: cross-arc endpoints, and the transitive closure
/// of (cross arcs ∪ intra-shard reachability between same-shard
/// endpoints). Tiny by construction — the partitioner minimizes cross
/// arcs — and rebuilt from scratch whenever it could have changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Boundary {
    /// Boundary nodes as *global* ids, ascending.
    nodes: Vec<NodeId>,
    /// Shard → indices into `nodes` of the boundary nodes it hosts.
    by_shard: Vec<Vec<u32>>,
    /// Reflexive closure rows of the boundary graph, indexed like `nodes`.
    rows: Vec<BitSet>,
}

impl Boundary {
    #[inline]
    fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Rebuilds the boundary closure from the cross-arc list. `intra(s, a,
    /// b)` must answer intra-shard reachability between *local* ids `a`
    /// and `b` of shard `s`.
    fn rebuild<F: FnMut(usize, NodeId, NodeId) -> bool>(
        cross: &[(NodeId, NodeId)],
        routing: &Routing,
        mut intra: F,
    ) -> Boundary {
        let mut by_shard = vec![Vec::new(); routing.shards()];
        if cross.is_empty() {
            return Boundary { nodes: Vec::new(), by_shard, rows: Vec::new() };
        }
        let mut nodes: Vec<NodeId> = cross.iter().flat_map(|&(u, v)| [u, v]).collect();
        nodes.sort_unstable();
        nodes.dedup();
        for (i, &v) in nodes.iter().enumerate() {
            by_shard[routing.shard(v)].push(i as u32);
        }
        let mut bg = DiGraph::with_nodes(nodes.len());
        for &(u, v) in cross {
            let ui = nodes.binary_search(&u).expect("cross endpoint indexed");
            let vi = nodes.binary_search(&v).expect("cross endpoint indexed");
            bg.add_edge(NodeId(ui as u32), NodeId(vi as u32));
        }
        // Same-shard boundary pairs inherit the shard's own reachability.
        for (s, members) in by_shard.iter().enumerate() {
            for &i in members {
                for &j in members {
                    if i != j
                        && intra(
                            s,
                            routing.local(nodes[i as usize]),
                            routing.local(nodes[j as usize]),
                        )
                    {
                        bg.add_edge(NodeId(i), NodeId(j));
                    }
                }
            }
        }
        let rows = traverse::closure_rows(&bg);
        Boundary { nodes, by_shard, rows }
    }

    /// Whether `src` reaches `dst` through the boundary: an intra hop from
    /// `src` to a boundary node of its shard, a (possibly empty) boundary
    /// walk, and an intra hop from a boundary node of `dst`'s shard to
    /// `dst`. Covers cross-shard pairs *and* same-shard pairs whose only
    /// path leaves the shard and comes back.
    fn route<F: FnMut(usize, NodeId, NodeId) -> bool>(
        &self,
        routing: &Routing,
        src: NodeId,
        dst: NodeId,
        mut intra: F,
    ) -> bool {
        if self.is_empty() {
            return false;
        }
        let (ss, sd) = (routing.shard(src), routing.shard(dst));
        let (ls, ld) = (routing.local(src), routing.local(dst));
        for &bi in &self.by_shard[ss] {
            if !intra(ss, ls, routing.local(self.nodes[bi as usize])) {
                continue;
            }
            for &bj in &self.by_shard[sd] {
                if self.rows[bi as usize].contains(bj as usize)
                    && intra(sd, routing.local(self.nodes[bj as usize]), ld)
                {
                    return true;
                }
            }
        }
        false
    }

    /// Boundary indices reachable from `src` (through one intra hop plus
    /// the boundary walk); rows are reflexive, so a boundary node `src`
    /// itself reaches is included.
    fn reachable_from<F: FnMut(usize, NodeId, NodeId) -> bool>(
        &self,
        routing: &Routing,
        src: NodeId,
        mut intra: F,
    ) -> BitSet {
        let mut out = BitSet::new(self.nodes.len());
        if self.is_empty() {
            return out;
        }
        let ss = routing.shard(src);
        let ls = routing.local(src);
        for &bi in &self.by_shard[ss] {
            if intra(ss, ls, routing.local(self.nodes[bi as usize])) {
                out.union_with(&self.rows[bi as usize]);
            }
        }
        out
    }

    /// Boundary indices that reach `dst` (boundary walk plus one intra hop
    /// into `dst`'s shard).
    fn reaching_to<F: FnMut(usize, NodeId, NodeId) -> bool>(
        &self,
        routing: &Routing,
        dst: NodeId,
        mut intra: F,
    ) -> BitSet {
        let mut hits = BitSet::new(self.nodes.len());
        if self.is_empty() {
            return hits;
        }
        let sd = routing.shard(dst);
        let ld = routing.local(dst);
        for &bj in &self.by_shard[sd] {
            if intra(sd, routing.local(self.nodes[bj as usize]), ld) {
                hits.insert(bj as usize);
            }
        }
        let mut out = BitSet::new(self.nodes.len());
        if hits.is_empty() {
            return out;
        }
        for (bi, row) in self.rows.iter().enumerate() {
            if row.intersects(&hits) {
                out.insert(bi);
            }
        }
        out
    }
}

/// The offline sharded closure: one [`CompressedClosure`] per shard over
/// the intra-shard arcs, the cross-arc list, and the boundary closure.
/// Exact at every point — mutations rebuild the boundary eagerly whenever
/// it could have changed — with the same §4 update vocabulary as the
/// single closure.
///
/// ```
/// use tc_graph::{DiGraph, NodeId};
/// use tc_core::shard::ShardedClosure;
/// use tc_core::ClosureConfig;
///
/// // Two weakly connected components land on different shards.
/// let g = DiGraph::from_edges([(0, 1), (1, 2), (3, 4)]);
/// let mut sc = ShardedClosure::build(ClosureConfig::new(), &g, 2).unwrap();
/// assert_eq!(sc.shard_count(), 2);
/// assert!(sc.reaches(NodeId(0), NodeId(2)));
/// assert!(!sc.reaches(NodeId(0), NodeId(4)));
/// // A cross-shard arc goes through the boundary closure.
/// sc.add_edge(NodeId(2), NodeId(3)).unwrap();
/// assert!(sc.reaches(NodeId(0), NodeId(4)));
/// ```
#[derive(Debug, Clone)]
pub struct ShardedClosure {
    routing: Routing,
    shards: Vec<CompressedClosure>,
    /// Cross-shard arcs by *global* id, unordered.
    cross: Vec<(NodeId, NodeId)>,
    /// The whole graph, authoritative for validation and verification.
    mirror: DiGraph,
    boundary: Boundary,
    config: ClosureConfig,
}

fn boundary_over(
    shards: &[CompressedClosure],
    cross: &[(NodeId, NodeId)],
    routing: &Routing,
) -> Boundary {
    Boundary::rebuild(cross, routing, |s, a, b| shards[s].reaches(a, b))
}

impl ShardedClosure {
    /// Partitions `g` into (at most) `shards` pieces and builds one
    /// compressed closure per piece plus the boundary closure over the
    /// cross arcs. Rejects cyclic graphs like [`CompressedClosure::build`].
    pub fn build(
        config: ClosureConfig,
        g: &DiGraph,
        shards: usize,
    ) -> Result<ShardedClosure, CycleError> {
        let part = topo::partition(g, shards)?;
        let mut routing = Routing::from_partition(&part);
        // `partition` caps the shard count at the number of pieces it found;
        // pad with empty shards so a small (or empty) graph can still grow
        // into the requested count — parentless inserts land on the
        // least-populated shard and fill the empties first.
        while routing.global_of.len() < shards.max(1) {
            routing.global_of.push(Vec::new());
        }
        let mut locals: Vec<DiGraph> = routing
            .global_of
            .iter()
            .map(|members| DiGraph::with_nodes(members.len()))
            .collect();
        let mut cross = Vec::new();
        for (u, v) in g.edges() {
            let (su, sv) = (routing.shard(u), routing.shard(v));
            if su == sv {
                locals[su].add_edge(routing.local(u), routing.local(v));
            } else {
                cross.push((u, v));
            }
        }
        let closures: Vec<CompressedClosure> = locals
            .iter()
            .map(|lg| config.build(lg))
            .collect::<Result<_, _>>()?;
        let boundary = boundary_over(&closures, &cross, &routing);
        Ok(ShardedClosure {
            routing,
            shards: closures,
            cross,
            mirror: g.clone(),
            boundary,
            config,
        })
    }

    fn rebuild_boundary(&mut self) {
        self.boundary = boundary_over(&self.shards, &self.cross, &self.routing);
    }

    /// Whether the intra arcs of shard `s` can influence the boundary
    /// closure: only if the shard hosts at least two boundary nodes.
    fn shard_shapes_boundary(&self, s: usize) -> bool {
        !self.boundary.is_empty() && self.boundary.by_shard[s].len() >= 2
    }

    /// Total number of nodes across all shards.
    pub fn node_count(&self) -> usize {
        self.routing.node_count()
    }

    /// Number of shards (fixed at build time).
    pub fn shard_count(&self) -> usize {
        self.routing.shards()
    }

    /// Node count per shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.routing.global_of.iter().map(Vec::len).collect()
    }

    /// Number of cross-shard arcs currently tracked.
    pub fn cross_arc_count(&self) -> usize {
        self.cross.len()
    }

    /// Number of boundary nodes (cross-arc endpoints).
    pub fn boundary_size(&self) -> usize {
        self.boundary.nodes.len()
    }

    /// The authoritative whole-graph mirror.
    pub fn graph(&self) -> &DiGraph {
        &self.mirror
    }

    /// The configuration every shard was built with.
    pub fn config(&self) -> &ClosureConfig {
        &self.config
    }

    /// Whether `src` reaches `dst` (reflexive): intra-shard probe first,
    /// then the boundary route. Out-of-range ids are unreachable.
    pub fn reaches(&self, src: NodeId, dst: NodeId) -> bool {
        let n = self.routing.node_count();
        if src.index() >= n || dst.index() >= n {
            return false;
        }
        let (ss, sd) = (self.routing.shard(src), self.routing.shard(dst));
        if ss == sd && self.shards[ss].reaches(self.routing.local(src), self.routing.local(dst)) {
            return true;
        }
        self.boundary
            .route(&self.routing, src, dst, |s, a, b| self.shards[s].reaches(a, b))
    }

    /// Batch form of [`ShardedClosure::reaches`].
    pub fn reaches_batch(&self, pairs: &[(NodeId, NodeId)]) -> Vec<bool> {
        let mut out = Vec::new();
        self.reaches_batch_into(pairs, &mut out);
        out
    }

    /// Batch form of [`ShardedClosure::reaches`] into a reused buffer
    /// (cleared first).
    pub fn reaches_batch_into(&self, pairs: &[(NodeId, NodeId)], out: &mut Vec<bool>) {
        out.clear();
        out.extend(pairs.iter().map(|&(s, d)| self.reaches(s, d)));
    }

    /// All nodes reachable from `node` (including itself), ascending by
    /// global id.
    pub fn successors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        if node.index() >= self.routing.node_count() {
            return out;
        }
        let ss = self.routing.shard(node);
        for l in self.shards[ss].successors(self.routing.local(node)) {
            out.push(self.routing.global(ss, l));
        }
        if !self.boundary.is_empty() {
            let set = self.boundary.reachable_from(&self.routing, node, |s, a, b| {
                self.shards[s].reaches(a, b)
            });
            for j in set.iter() {
                let exit = self.boundary.nodes[j];
                let sb = self.routing.shard(exit);
                for l in self.shards[sb].successors(self.routing.local(exit)) {
                    out.push(self.routing.global(sb, l));
                }
            }
            out.sort_unstable();
            out.dedup();
        } else {
            out.sort_unstable();
        }
        out
    }

    /// All nodes that reach `node` (including itself), ascending by global
    /// id.
    pub fn predecessors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        if node.index() >= self.routing.node_count() {
            return out;
        }
        let sd = self.routing.shard(node);
        for l in self.shards[sd].predecessors(self.routing.local(node)) {
            out.push(self.routing.global(sd, l));
        }
        if !self.boundary.is_empty() {
            let set = self.boundary.reaching_to(&self.routing, node, |s, a, b| {
                self.shards[s].reaches(a, b)
            });
            for j in set.iter() {
                let entry = self.boundary.nodes[j];
                let sb = self.routing.shard(entry);
                for l in self.shards[sb].predecessors(self.routing.local(entry)) {
                    out.push(self.routing.global(sb, l));
                }
            }
            out.sort_unstable();
            out.dedup();
        } else {
            out.sort_unstable();
        }
        out
    }

    /// Adds a node with incoming arcs from `parents` (§4.2). The node
    /// lands on its first parent's shard (parentless nodes go to the
    /// least-populated shard); parents on other shards become cross arcs.
    pub fn add_node_with_parents(&mut self, parents: &[NodeId]) -> Result<NodeId, UpdateError> {
        let n = self.routing.node_count();
        for &p in parents {
            if p.index() >= n {
                return Err(UpdateError::UnknownNode(p));
            }
        }
        let mut uniq: Vec<NodeId> = Vec::with_capacity(parents.len());
        for &p in parents {
            if !uniq.contains(&p) {
                uniq.push(p);
            }
        }
        let s = uniq
            .first()
            .map(|&p| self.routing.shard(p))
            .unwrap_or_else(|| self.routing.smallest_shard());
        let local_parents: Vec<NodeId> = uniq
            .iter()
            .filter(|&&p| self.routing.shard(p) == s)
            .map(|&p| self.routing.local(p))
            .collect();
        let zl = self.shards[s].add_node_with_parents(&local_parents)?;
        let (zg, expect) = self.routing.push_node(s);
        debug_assert_eq!(zl, expect);
        let zm = self.mirror.add_node();
        debug_assert_eq!(zm, zg);
        let mut dirty = false;
        for &p in &uniq {
            self.mirror.add_edge(p, zg);
            if self.routing.shard(p) != s {
                self.cross.push((p, zg));
                dirty = true;
            }
        }
        if dirty {
            self.rebuild_boundary();
        }
        Ok(zg)
    }

    /// Adds the arc `src -> dst` (§4.3). Same-shard arcs go to the shard's
    /// closure; cross-shard arcs go to the cross list and the boundary
    /// closure. Returns `Ok(false)` if the arc already exists.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) -> Result<bool, UpdateError> {
        let n = self.routing.node_count();
        if src.index() >= n {
            return Err(UpdateError::UnknownNode(src));
        }
        if dst.index() >= n {
            return Err(UpdateError::UnknownNode(dst));
        }
        if src == dst {
            return Err(UpdateError::SelfLoop(src));
        }
        if self.mirror.has_edge(src, dst) {
            return Ok(false);
        }
        if self.reaches(dst, src) {
            return Err(UpdateError::WouldCreateCycle { src, dst });
        }
        let (ss, sd) = (self.routing.shard(src), self.routing.shard(dst));
        if ss == sd {
            self.shards[ss].add_edge(self.routing.local(src), self.routing.local(dst))?;
            self.mirror.add_edge(src, dst);
            if self.shard_shapes_boundary(ss) {
                self.rebuild_boundary();
            }
        } else {
            self.mirror.add_edge(src, dst);
            self.cross.push((src, dst));
            self.rebuild_boundary();
        }
        Ok(true)
    }

    /// Removes the arc `src -> dst` (§4.4 / PR 5 scoped recompute inside
    /// the owning shard).
    pub fn remove_edge(&mut self, src: NodeId, dst: NodeId) -> Result<(), UpdateError> {
        let n = self.routing.node_count();
        if src.index() >= n {
            return Err(UpdateError::UnknownNode(src));
        }
        if dst.index() >= n {
            return Err(UpdateError::UnknownNode(dst));
        }
        if !self.mirror.has_edge(src, dst) {
            return Err(UpdateError::NoSuchEdge(src, dst));
        }
        let (ss, sd) = (self.routing.shard(src), self.routing.shard(dst));
        if ss == sd {
            self.shards[ss].remove_edge(self.routing.local(src), self.routing.local(dst))?;
            self.mirror.remove_edge(src, dst);
            if self.shard_shapes_boundary(ss) {
                self.rebuild_boundary();
            }
        } else {
            let pos = self
                .cross
                .iter()
                .position(|&a| a == (src, dst))
                .expect("cross arc tracked in cross list");
            self.cross.swap_remove(pos);
            self.mirror.remove_edge(src, dst);
            self.rebuild_boundary();
        }
        Ok(())
    }

    /// Removes `node` and every incident arc; the owning shard quarantines
    /// the slot exactly like [`CompressedClosure::remove_node`].
    pub fn remove_node(&mut self, node: NodeId) -> Result<(), UpdateError> {
        if node.index() >= self.routing.node_count() {
            return Err(UpdateError::UnknownNode(node));
        }
        let s = self.routing.shard(node);
        self.shards[s].remove_node(self.routing.local(node))?;
        for d in self.mirror.successors(node).to_vec() {
            self.mirror.remove_edge(node, d);
        }
        for p in self.mirror.predecessors(node).to_vec() {
            self.mirror.remove_edge(p, node);
        }
        let had_cross = self.cross.iter().any(|&(u, v)| u == node || v == node);
        self.cross.retain(|&(u, v)| u != node && v != node);
        if had_cross || self.shard_shapes_boundary(s) {
            self.rebuild_boundary();
        }
        Ok(())
    }

    /// Interposes a refinement node `z` between `child` and its immediate
    /// predecessors (§4.1). When all parents share `child`'s shard the
    /// shard's constant-time reserve path is tried first; if the reserve is
    /// exhausted, or parents span shards, the op degrades to a generic
    /// insert (`add_node_with_parents` + `add_edge(z, child)`), which
    /// yields identical reachability because refinement keeps the original
    /// `parent -> child` arcs either way. Never returns
    /// [`UpdateError::ReserveExhausted`].
    pub fn refine_insert(
        &mut self,
        child: NodeId,
        parents: &[NodeId],
    ) -> Result<NodeId, UpdateError> {
        let n = self.routing.node_count();
        if child.index() >= n {
            return Err(UpdateError::UnknownNode(child));
        }
        for &p in parents {
            if p.index() >= n {
                return Err(UpdateError::UnknownNode(p));
            }
        }
        let mut want: Vec<NodeId> = parents.to_vec();
        want.sort_unstable();
        want.dedup();
        let mut have: Vec<NodeId> = self.mirror.predecessors(child).to_vec();
        have.sort_unstable();
        if want != have {
            return Err(UpdateError::RefineParentsMismatch { child });
        }
        let s = self.routing.shard(child);
        let lc = self.routing.local(child);
        let local_parents: Vec<NodeId> = want
            .iter()
            .filter(|&&p| self.routing.shard(p) == s)
            .map(|&p| self.routing.local(p))
            .collect();
        let all_local = local_parents.len() == want.len();
        let zl = if all_local {
            match self.shards[s].refine_insert(lc, &local_parents) {
                Ok(z) => z,
                Err(UpdateError::ReserveExhausted(_)) => {
                    let z = self.shards[s].add_node_with_parents(&local_parents)?;
                    self.shards[s].add_edge(z, lc)?;
                    z
                }
                Err(e) => return Err(e),
            }
        } else {
            let z = self.shards[s].add_node_with_parents(&local_parents)?;
            self.shards[s].add_edge(z, lc)?;
            z
        };
        let (zg, expect) = self.routing.push_node(s);
        debug_assert_eq!(zl, expect);
        let zm = self.mirror.add_node();
        debug_assert_eq!(zm, zg);
        let mut dirty = false;
        for &p in &want {
            self.mirror.add_edge(p, zg);
            if self.routing.shard(p) != s {
                self.cross.push((p, zg));
                dirty = true;
            }
        }
        self.mirror.add_edge(zg, child);
        if dirty {
            self.rebuild_boundary();
        }
        Ok(zg)
    }

    /// Relabels every shard (fresh gaps and reserves, tombstones dropped).
    pub fn relabel(&mut self) {
        for c in &mut self.shards {
            c.relabel();
        }
    }

    /// Rebuilds every shard from scratch with a fresh optimal cover.
    pub fn rebuild(&mut self) {
        for c in &mut self.shards {
            c.rebuild();
        }
    }

    /// Freezes every shard's query plane.
    pub fn freeze(&mut self) {
        for c in &mut self.shards {
            c.freeze();
        }
    }

    /// Thaws every shard.
    pub fn thaw(&mut self) {
        for c in &mut self.shards {
            c.thaw();
        }
    }

    /// Sets the build/rebuild thread count on every shard.
    pub fn set_threads(&mut self, threads: usize) {
        for c in &mut self.shards {
            c.set_threads(threads);
        }
    }

    /// Enables or disables scoped-deletion recompute on every shard.
    pub fn set_scoped_deletes(&mut self, enable: bool) {
        for c in &mut self.shards {
            c.set_scoped_deletes(enable);
        }
    }

    /// Structural audit: every shard's own audit, the routing bijection,
    /// the intra/cross edge split against the mirror, and the boundary
    /// closure against a from-scratch rebuild.
    pub fn audit(&self) -> Result<(), String> {
        for (s, c) in self.shards.iter().enumerate() {
            c.audit().map_err(|e| format!("shard {s}: {e}"))?;
        }
        let n = self.routing.node_count();
        if self.mirror.node_count() != n {
            return Err(format!(
                "mirror has {} nodes, routing has {n}",
                self.mirror.node_count()
            ));
        }
        for g in 0..n {
            let v = NodeId(g as u32);
            let s = self.routing.shard(v);
            if s >= self.shards.len() || self.routing.global(s, self.routing.local(v)) != v {
                return Err(format!("routing bijection broken at node {g}"));
            }
        }
        let intra: usize = self.shards.iter().map(|c| c.graph().edge_count()).sum();
        if intra + self.cross.len() != self.mirror.edge_count() {
            return Err(format!(
                "edge split mismatch: {intra} intra + {} cross != {} mirror arcs",
                self.cross.len(),
                self.mirror.edge_count()
            ));
        }
        let fresh = boundary_over(&self.shards, &self.cross, &self.routing);
        if fresh != self.boundary {
            return Err("boundary closure out of date".into());
        }
        Ok(())
    }

    /// Full semantic check: every composed successor set against a DFS
    /// closure of the mirror. O(n·m) — tests and fuzzing only.
    pub fn verify(&self) -> Result<(), String> {
        let rows = traverse::closure_rows(&self.mirror);
        for (u, row) in rows.iter().enumerate() {
            let got: Vec<usize> = self
                .successors(NodeId(u as u32))
                .iter()
                .map(|v| v.index())
                .collect();
            let want: Vec<usize> = row.iter().collect();
            if got != want {
                return Err(format!(
                    "successors({u}): sharded {got:?} != DFS {want:?}"
                ));
            }
        }
        Ok(())
    }
}

/// Aggregated progress counters for a [`ShardedService`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardedStats {
    /// Ops accepted by the front end.
    pub submitted: u64,
    /// Ops the front end validated and dropped (unknown node, cycle, ...)
    /// — the sharded analogue of the single service's `skipped`.
    pub rejected: u64,
    /// Per-shard ops enqueued to shard writers (one front-end op can fan
    /// out to several, e.g. a refinement).
    pub routed: u64,
    /// Sum of shard writers' applied ops.
    pub applied: u64,
    /// Sum of shard writers' skipped ops. The front end validates against
    /// an authoritative mirror, so this stays 0 unless something is wrong.
    pub skipped: u64,
    /// Routing/boundary snapshots published (the initial one included).
    pub publishes: u64,
    /// First structural-audit failure reported by any shard writer.
    pub audit_violation: Option<String>,
}

/// The front end's synchronous verdict for one submitted op, reported by
/// [`ShardedService::submit_with_outcome`]. Validation and id assignment
/// happen under the front-end lock at submit time, so `Routed` can carry
/// the id of a node the op created before any shard writer has applied it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Validated and routed to the shard writers; `new_node` is the global
    /// id assigned if the op creates a node (`AddNode`, `Refine`).
    Routed {
        /// Id of the node this op created, if any.
        new_node: Option<NodeId>,
    },
    /// Validated and dropped (unknown node, cycle, absent arc, ...);
    /// counted in [`ShardedStats::rejected`].
    Rejected,
    /// A no-op by definition (currently: a duplicate arc) — accepted
    /// without routing anything.
    Noop,
}

/// One published routing + boundary view; shard snapshots pair with it at
/// read time.
#[derive(Debug)]
struct RouteSnapshot {
    routing: Routing,
    boundary: Boundary,
    version: u64,
}

/// Epoch-validated swap cell for [`RouteSnapshot`]s — same protocol as the
/// per-shard services' snapshot cell.
struct RouteCell {
    epoch: AtomicU64,
    slot: Mutex<Arc<RouteSnapshot>>,
}

/// Front-end state: the authoritative mirror the router validates against,
/// plus longest-path-to-sink levels for O(1) admission of the common
/// "edge points down" case.
struct FrontState {
    routing: Routing,
    mirror: DiGraph,
    /// Longest path to a sink per node: every arc `(p, q)` satisfies
    /// `level[p] >= level[q] + 1`, so a path `dst -> .. -> src` forces
    /// `level[dst] > level[src]` — the cheap cycle-admission test.
    level: Vec<usize>,
    cross: Vec<(NodeId, NodeId)>,
    /// Whether the boundary closure must be rebuilt at the next flush.
    dirty: bool,
    /// Set by [`ShardedService::close`]: later submits are rejected with
    /// [`ServiceClosed`] before touching the mirror or any shard writer.
    closed: bool,
    submitted: u64,
    rejected: u64,
    routed: u64,
    /// Generation-stamped DFS visit marks (no clearing between checks).
    visit: Vec<u32>,
    visit_gen: u32,
    stack: Vec<NodeId>,
    queue: Vec<NodeId>,
}

impl FrontState {
    /// Recomputes `level` from successors for each seed, propagating to
    /// predecessors while anything changes (handles both raises on insert
    /// and drops on delete).
    fn recompute_levels_up(&mut self, seeds: &[NodeId]) {
        let mut queue = std::mem::take(&mut self.queue);
        queue.clear();
        queue.extend_from_slice(seeds);
        while let Some(v) = queue.pop() {
            let want = self
                .mirror
                .successors(v)
                .iter()
                .map(|d| self.level[d.index()] + 1)
                .max()
                .unwrap_or(0);
            if self.level[v.index()] != want {
                self.level[v.index()] = want;
                queue.extend_from_slice(self.mirror.predecessors(v));
            }
        }
        self.queue = queue;
    }

    /// Whether adding `src -> dst` would create a cycle, i.e. whether
    /// `dst` already reaches `src`. Levels admit most inserts in O(1);
    /// otherwise a DFS from `dst` pruned to nodes with
    /// `level > level[src]` settles it.
    fn creates_cycle(&mut self, src: NodeId, dst: NodeId) -> bool {
        if self.level[dst.index()] <= self.level[src.index()] {
            return false;
        }
        self.visit_gen = self.visit_gen.wrapping_add(1);
        if self.visit_gen == 0 {
            self.visit.iter_mut().for_each(|v| *v = 0);
            self.visit_gen = 1;
        }
        let gen = self.visit_gen;
        self.stack.clear();
        self.stack.push(dst);
        self.visit[dst.index()] = gen;
        while let Some(v) = self.stack.pop() {
            if v == src {
                return true;
            }
            for &w in self.mirror.successors(v) {
                if self.visit[w.index()] == gen {
                    continue;
                }
                // Only nodes above src's level can sit on a path to src.
                if w != src && self.level[w.index()] <= self.level[src.index()] {
                    continue;
                }
                self.visit[w.index()] = gen;
                self.stack.push(w);
            }
        }
        false
    }

    /// Registers a fresh node on `shard` in the routing tables, mirror,
    /// and level/visit arrays; returns `(global, local)`.
    fn push_node(&mut self, shard: usize) -> (NodeId, NodeId) {
        let (zg, zl) = self.routing.push_node(shard);
        let zm = self.mirror.add_node();
        debug_assert_eq!(zm, zg);
        self.level.push(0);
        self.visit.push(0);
        (zg, zl)
    }
}

/// The sharded serving layer: one [`ClosureService`] writer per shard, a
/// validating front end, and a routing/boundary snapshot republished at
/// every [`ShardedService::flush`].
///
/// The front end owns an authoritative mirror, so every op is validated
/// *synchronously* (unknown nodes, self-loops, duplicate arcs, cycles) and
/// either rejected — counted in [`ShardedStats::rejected`] — or routed to
/// the owning shard's writer as ops that cannot fail there. That keeps the
/// routing tables, which the front end extends synchronously, in lockstep
/// with what the writers will eventually apply.
///
/// Consistency: each shard on its own is prefix-consistent exactly like a
/// single [`ClosureService`]. The routing/boundary snapshot is republished
/// only at [`ShardedService::flush`], so between flushes a cross-shard
/// composition may mix per-shard prefixes and lag behind recent cross-arc
/// churn; immediately after a flush every composed answer is exact.
///
/// ```
/// use tc_graph::{DiGraph, NodeId};
/// use tc_core::serve::{ServiceConfig, ServiceOp};
/// use tc_core::shard::{ShardedClosure, ShardedService};
/// use tc_core::ClosureConfig;
///
/// let g = DiGraph::from_edges([(0, 1), (2, 3)]);
/// let sc = ShardedClosure::build(ClosureConfig::new(), &g, 2).unwrap();
/// let service = ShardedService::start(sc, ServiceConfig::new());
/// let mut reader = service.reader();
///
/// // A cross-shard arc: 1 (shard of {0,1}) -> 2 (shard of {2,3}).
/// service.submit(ServiceOp::AddEdge { src: NodeId(1), dst: NodeId(2) }).unwrap();
/// service.flush();
/// assert!(reader.reaches(NodeId(0), NodeId(3)));
///
/// let (stats, sc) = service.shutdown();
/// assert_eq!(stats.skipped, 0);
/// assert!(sc.audit().is_ok());
/// ```
pub struct ShardedService {
    services: Vec<ClosureService>,
    front: Mutex<FrontState>,
    cell: Arc<RouteCell>,
    config: ClosureConfig,
}

impl ShardedService {
    /// Starts one background writer per shard and publishes the initial
    /// routing/boundary snapshot.
    pub fn start(sharded: ShardedClosure, config: ServiceConfig) -> ShardedService {
        let ShardedClosure { routing, shards, cross, mirror, boundary, config: closure_config } =
            sharded;
        let lv = topo::levels(&mirror).expect("sharded closure mirror is acyclic");
        let n = routing.node_count();
        let level: Vec<usize> = (0..n).map(|i| lv.level_of(NodeId(i as u32))).collect();
        let services: Vec<ClosureService> = shards
            .into_iter()
            .map(|c| ClosureService::start(c, config))
            .collect();
        let cell = Arc::new(RouteCell {
            epoch: AtomicU64::new(1),
            slot: Mutex::new(Arc::new(RouteSnapshot {
                routing: routing.clone(),
                boundary,
                version: 1,
            })),
        });
        let front = Mutex::new(FrontState {
            routing,
            mirror,
            level,
            cross,
            dirty: false,
            closed: false,
            submitted: 0,
            rejected: 0,
            routed: 0,
            visit: vec![0; n],
            visit_gen: 0,
            stack: Vec::new(),
            queue: Vec::new(),
        });
        ShardedService { services, front, cell, config: closure_config }
    }

    /// Validates and routes one op; returns its front-end sequence number.
    /// Invalid ops (the ones a single [`ClosureService`] writer would
    /// skip) are counted in [`ShardedStats::rejected`] and dropped here,
    /// before any writer sees them. After [`ShardedService::close`] the op
    /// is rejected with [`ServiceClosed`] before touching any state.
    pub fn submit(&self, op: ServiceOp) -> Result<u64, ServiceClosed> {
        self.submit_with_outcome(op).map(|(seq, _)| seq)
    }

    /// [`ShardedService::submit`], but also reports the front end's
    /// synchronous verdict. Because validation and id assignment happen
    /// under the front-end lock *at submit time*, a caller learns the id
    /// of a node created by `AddNode`/`Refine` immediately — the network
    /// dictionary layer binds string keys to exactly these ids.
    pub fn submit_with_outcome(
        &self,
        op: ServiceOp,
    ) -> Result<(u64, SubmitOutcome), ServiceClosed> {
        let mut f = self.front.lock().expect("front state poisoned");
        if f.closed {
            return Err(ServiceClosed);
        }
        f.submitted += 1;
        let seq = f.submitted;
        let outcome = self.route_op(&mut f, op);
        Ok((seq, outcome))
    }

    /// Submits a batch under one front-end lock; returns the last sequence
    /// number (0 if empty). All-or-nothing under a close race: either the
    /// whole batch is validated and routed, or [`ServiceClosed`] comes back
    /// and none of it was.
    pub fn submit_batch(
        &self,
        ops: impl IntoIterator<Item = ServiceOp>,
    ) -> Result<u64, ServiceClosed> {
        let mut f = self.front.lock().expect("front state poisoned");
        if f.closed {
            return Err(ServiceClosed);
        }
        let mut seq = f.submitted;
        for op in ops {
            f.submitted += 1;
            seq = f.submitted;
            self.route_op(&mut f, op);
        }
        Ok(seq)
    }

    /// Closes the front end and every shard writer's queue: later submits
    /// return [`ServiceClosed`]; everything accepted before the close is
    /// still applied and published. Taken under the front-end lock, so no
    /// accepted op can observe a closed shard writer. Idempotent.
    pub fn close(&self) {
        let mut f = self.front.lock().expect("front state poisoned");
        f.closed = true;
        for svc in &self.services {
            svc.close();
        }
    }

    fn route_op(&self, f: &mut FrontState, op: ServiceOp) -> SubmitOutcome {
        let n = f.routing.node_count();
        match op {
            ServiceOp::AddNode { parents } => {
                if parents.iter().any(|p| p.index() >= n) {
                    f.rejected += 1;
                    return SubmitOutcome::Rejected;
                }
                let mut uniq: Vec<NodeId> = Vec::with_capacity(parents.len());
                for &p in &parents {
                    if !uniq.contains(&p) {
                        uniq.push(p);
                    }
                }
                let s = uniq
                    .first()
                    .map(|&p| f.routing.shard(p))
                    .unwrap_or_else(|| f.routing.smallest_shard());
                let (zg, _) = f.push_node(s);
                for &p in &uniq {
                    f.mirror.add_edge(p, zg);
                    if f.routing.shard(p) != s {
                        f.cross.push((p, zg));
                        f.dirty = true;
                    }
                }
                f.recompute_levels_up(&uniq);
                let local_parents: Vec<NodeId> = uniq
                    .iter()
                    .filter(|&&p| f.routing.shard(p) == s)
                    .map(|&p| f.routing.local(p))
                    .collect();
                self.services[s]
                    .submit(ServiceOp::AddNode { parents: local_parents })
                    .expect("shard writer closed before front end");
                f.routed += 1;
                SubmitOutcome::Routed { new_node: Some(zg) }
            }
            ServiceOp::AddEdge { src, dst } => {
                if src.index() >= n || dst.index() >= n || src == dst {
                    f.rejected += 1;
                    return SubmitOutcome::Rejected;
                }
                if f.mirror.has_edge(src, dst) {
                    // duplicate: a no-op, matching CompressedClosure::add_edge
                    return SubmitOutcome::Noop;
                }
                if f.creates_cycle(src, dst) {
                    f.rejected += 1;
                    return SubmitOutcome::Rejected;
                }
                f.mirror.add_edge(src, dst);
                f.recompute_levels_up(&[src]);
                let (ss, sd) = (f.routing.shard(src), f.routing.shard(dst));
                if ss == sd {
                    self.services[ss]
                        .submit(ServiceOp::AddEdge {
                            src: f.routing.local(src),
                            dst: f.routing.local(dst),
                        })
                        .expect("shard writer closed before front end");
                    f.routed += 1;
                    if !f.cross.is_empty() {
                        f.dirty = true;
                    }
                } else {
                    f.cross.push((src, dst));
                    f.dirty = true;
                }
                SubmitOutcome::Routed { new_node: None }
            }
            ServiceOp::RemoveEdge { src, dst } => {
                if src.index() >= n || dst.index() >= n || !f.mirror.has_edge(src, dst) {
                    f.rejected += 1;
                    return SubmitOutcome::Rejected;
                }
                f.mirror.remove_edge(src, dst);
                f.recompute_levels_up(&[src]);
                let (ss, sd) = (f.routing.shard(src), f.routing.shard(dst));
                if ss == sd {
                    self.services[ss]
                        .submit(ServiceOp::RemoveEdge {
                            src: f.routing.local(src),
                            dst: f.routing.local(dst),
                        })
                        .expect("shard writer closed before front end");
                    f.routed += 1;
                    if !f.cross.is_empty() {
                        f.dirty = true;
                    }
                } else {
                    let pos = f
                        .cross
                        .iter()
                        .position(|&a| a == (src, dst))
                        .expect("cross arc tracked in cross list");
                    f.cross.swap_remove(pos);
                    f.dirty = true;
                }
                SubmitOutcome::Routed { new_node: None }
            }
            ServiceOp::RemoveNode { node } => {
                if node.index() >= n {
                    f.rejected += 1;
                    return SubmitOutcome::Rejected;
                }
                let preds = f.mirror.predecessors(node).to_vec();
                for d in f.mirror.successors(node).to_vec() {
                    f.mirror.remove_edge(node, d);
                }
                for &p in &preds {
                    f.mirror.remove_edge(p, node);
                }
                let had_cross = f.cross.iter().any(|&(u, v)| u == node || v == node);
                f.cross.retain(|&(u, v)| u != node && v != node);
                if had_cross || !f.cross.is_empty() {
                    f.dirty = true;
                }
                let mut seeds = preds;
                seeds.push(node);
                f.recompute_levels_up(&seeds);
                let s = f.routing.shard(node);
                self.services[s]
                    .submit(ServiceOp::RemoveNode { node: f.routing.local(node) })
                    .expect("shard writer closed before front end");
                f.routed += 1;
                SubmitOutcome::Routed { new_node: None }
            }
            ServiceOp::Refine { child } => {
                if child.index() >= n {
                    f.rejected += 1;
                    return SubmitOutcome::Rejected;
                }
                let parents = f.mirror.predecessors(child).to_vec();
                let s = f.routing.shard(child);
                let (zg, zl) = f.push_node(s);
                for &p in &parents {
                    f.mirror.add_edge(p, zg);
                    if f.routing.shard(p) != s {
                        f.cross.push((p, zg));
                        f.dirty = true;
                    }
                }
                f.mirror.add_edge(zg, child);
                let mut seeds = parents.clone();
                seeds.push(zg);
                f.recompute_levels_up(&seeds);
                let local_parents: Vec<NodeId> = parents
                    .iter()
                    .filter(|&&p| f.routing.shard(p) == s)
                    .map(|&p| f.routing.local(p))
                    .collect();
                // The shard writer applies these FIFO: the generic form of
                // refinement (reachability-identical because the original
                // parent -> child arcs stay).
                self.services[s]
                    .submit(ServiceOp::AddNode { parents: local_parents })
                    .expect("shard writer closed before front end");
                self.services[s]
                    .submit(ServiceOp::AddEdge { src: zl, dst: f.routing.local(child) })
                    .expect("shard writer closed before front end");
                f.routed += 2;
                SubmitOutcome::Routed { new_node: Some(zg) }
            }
            ServiceOp::Relabel => {
                for svc in &self.services {
                    svc.submit(ServiceOp::Relabel).expect("shard writer closed before front end");
                    f.routed += 1;
                }
                SubmitOutcome::Routed { new_node: None }
            }
            ServiceOp::Rebuild => {
                for svc in &self.services {
                    svc.submit(ServiceOp::Rebuild).expect("shard writer closed before front end");
                    f.routed += 1;
                }
                SubmitOutcome::Routed { new_node: None }
            }
        }
    }

    /// Blocks until every routed op is applied and published by its shard
    /// writer, republishes the routing/boundary snapshot from the fresh
    /// shard snapshots, and returns the aggregated stats. After this
    /// returns, composed reads are exact.
    pub fn flush(&self) -> ShardedStats {
        let mut f = self.front.lock().expect("front state poisoned");
        let mut stats = ShardedStats {
            submitted: f.submitted,
            rejected: f.rejected,
            routed: f.routed,
            ..ShardedStats::default()
        };
        for svc in &self.services {
            let s = svc.flush();
            stats.applied += s.applied;
            stats.skipped += s.skipped;
            if stats.audit_violation.is_none() {
                stats.audit_violation = s.audit_violation;
            }
        }
        let published = {
            let slot = self.cell.slot.lock().expect("route cell poisoned");
            (slot.version, slot.routing.node_count())
        };
        if f.dirty || published.1 != f.routing.node_count() {
            let snaps: Vec<Arc<ServiceSnapshot>> =
                self.services.iter().map(|s| s.reader().snapshot()).collect();
            let boundary = if f.dirty {
                Boundary::rebuild(&f.cross, &f.routing, |s, a, b| snaps[s].reaches(a, b))
            } else {
                self.cell.slot.lock().expect("route cell poisoned").boundary.clone()
            };
            let next = Arc::new(RouteSnapshot {
                routing: f.routing.clone(),
                boundary,
                version: published.0 + 1,
            });
            *self.cell.slot.lock().expect("route cell poisoned") = next;
            self.cell.epoch.store(published.0 + 1, Ordering::Release);
            f.dirty = false;
        }
        stats.publishes = self.cell.epoch.load(Ordering::Acquire);
        stats
    }

    /// Current counters without waiting for the writers to drain.
    pub fn stats(&self) -> ShardedStats {
        let f = self.front.lock().expect("front state poisoned");
        let mut stats = ShardedStats {
            submitted: f.submitted,
            rejected: f.rejected,
            routed: f.routed,
            publishes: self.cell.epoch.load(Ordering::Acquire),
            ..ShardedStats::default()
        };
        for svc in &self.services {
            let s = svc.stats();
            stats.applied += s.applied;
            stats.skipped += s.skipped;
            if stats.audit_violation.is_none() {
                stats.audit_violation = s.audit_violation;
            }
        }
        stats
    }

    /// A new scatter-gather reader pinned to the current snapshots.
    pub fn reader(&self) -> ShardedReader {
        let route = Arc::clone(&self.cell.slot.lock().expect("route cell poisoned"));
        let epoch = route.version;
        ShardedReader {
            readers: self.services.iter().map(|s| s.reader()).collect(),
            cell: Arc::clone(&self.cell),
            route,
            epoch,
            pinned: Vec::new(),
            local_pairs: Vec::new(),
            slots: Vec::new(),
            bools: Vec::new(),
            seen: Vec::new(),
            stab: Vec::new(),
        }
    }

    /// Flushes, stops every shard writer, and reassembles the exact
    /// offline [`ShardedClosure`].
    pub fn shutdown(self) -> (ShardedStats, ShardedClosure) {
        self.close();
        let stats = self.flush();
        let ShardedService { services, front, cell: _, config } = self;
        let f = front.into_inner().expect("front state poisoned");
        let mut shards = Vec::with_capacity(services.len());
        for svc in services {
            let (_, backend) = svc.shutdown();
            shards.push(backend.into_single().expect("sharded service runs single backends"));
        }
        let boundary = boundary_over(&shards, &f.cross, &f.routing);
        (
            stats,
            ShardedClosure {
                routing: f.routing,
                shards,
                cross: f.cross,
                mirror: f.mirror,
                boundary,
                config,
            },
        )
    }
}

/// Whether `src` reaches `dst` on one pinned set of shard snapshots.
fn reaches_on(route: &RouteSnapshot, snaps: &[Arc<ServiceSnapshot>], src: NodeId, dst: NodeId) -> bool {
    let n = route.routing.node_count();
    if src.index() >= n || dst.index() >= n {
        return false;
    }
    let (ss, sd) = (route.routing.shard(src), route.routing.shard(dst));
    if ss == sd && snaps[ss].reaches(route.routing.local(src), route.routing.local(dst)) {
        return true;
    }
    route
        .boundary
        .route(&route.routing, src, dst, |s, a, b| snaps[s].reaches(a, b))
}

/// A scatter-gather query handle over a [`ShardedService`]: one
/// [`ServiceReader`] per shard plus the routing/boundary snapshot, all
/// revalidated with one atomic epoch load per pin. Batch probes group
/// pairs by shard and run through each snapshot's zero-alloc
/// [`ServiceSnapshot::reaches_batch_into`] path; only pairs the intra
/// probes left unanswered take the boundary route. All scratch buffers are
/// reused across calls.
pub struct ShardedReader {
    readers: Vec<ServiceReader>,
    cell: Arc<RouteCell>,
    route: Arc<RouteSnapshot>,
    epoch: u64,
    pinned: Vec<Arc<ServiceSnapshot>>,
    local_pairs: Vec<Vec<(NodeId, NodeId)>>,
    slots: Vec<Vec<usize>>,
    bools: Vec<bool>,
    seen: Vec<NodeId>,
    stab: Vec<u32>,
}

impl ShardedReader {
    /// Revalidates the routing/boundary snapshot and pins the freshest
    /// snapshot of every shard for the duration of one query.
    fn pin(&mut self) {
        let current = self.cell.epoch.load(Ordering::Acquire);
        if current != self.epoch {
            let snap = Arc::clone(&self.cell.slot.lock().expect("route cell poisoned"));
            self.epoch = snap.version;
            self.route = snap;
        }
        self.pinned.clear();
        for r in &mut self.readers {
            self.pinned.push(r.snapshot());
        }
    }

    /// Version of the routing/boundary snapshot the last query used.
    pub fn route_version(&self) -> u64 {
        self.route.version
    }

    /// Largest per-shard staleness (submitted-but-unpublished shard ops).
    pub fn staleness(&self) -> u64 {
        self.readers.iter().map(ServiceReader::staleness).max().unwrap_or(0)
    }

    /// Whether `src` reaches `dst` on the freshest pinned snapshots.
    pub fn reaches(&mut self, src: NodeId, dst: NodeId) -> bool {
        self.pin();
        reaches_on(&self.route, &self.pinned, src, dst)
    }

    /// Batch reachability, scatter-gathered across shards; see
    /// [`ShardedReader::reaches_batch_into`] for the allocation-free form.
    pub fn reaches_batch(&mut self, pairs: &[(NodeId, NodeId)]) -> Vec<bool> {
        let mut out = Vec::new();
        self.reaches_batch_into(pairs, &mut out);
        out
    }

    /// Answers every pair into `out` (cleared first). Same-shard pairs are
    /// grouped per shard and answered through that snapshot's
    /// [`ServiceSnapshot::reaches_batch_into`]; pairs still unanswered —
    /// cross-shard pairs and same-shard pairs whose only path leaves the
    /// shard — take the boundary route. With reused buffers the whole
    /// batch allocates nothing.
    pub fn reaches_batch_into(&mut self, pairs: &[(NodeId, NodeId)], out: &mut Vec<bool>) {
        self.pin();
        let route = &self.route;
        let snaps = &self.pinned;
        let shards = route.routing.shards();
        self.local_pairs.resize_with(shards, Vec::new);
        self.slots.resize_with(shards, Vec::new);
        for v in &mut self.local_pairs {
            v.clear();
        }
        for v in &mut self.slots {
            v.clear();
        }
        out.clear();
        out.resize(pairs.len(), false);
        let n = route.routing.node_count();
        for (i, &(src, dst)) in pairs.iter().enumerate() {
            if src.index() >= n || dst.index() >= n {
                continue;
            }
            let (ss, sd) = (route.routing.shard(src), route.routing.shard(dst));
            if ss == sd {
                self.local_pairs[ss].push((route.routing.local(src), route.routing.local(dst)));
                self.slots[ss].push(i);
            }
        }
        for (s, snap) in snaps.iter().enumerate() {
            if self.slots[s].is_empty() {
                continue;
            }
            snap.reaches_batch_into(&self.local_pairs[s], &mut self.bools);
            for (k, &i) in self.slots[s].iter().enumerate() {
                out[i] = self.bools[k];
            }
        }
        if !route.boundary.is_empty() {
            for (i, &(src, dst)) in pairs.iter().enumerate() {
                if out[i] || src.index() >= n || dst.index() >= n {
                    continue;
                }
                out[i] = route
                    .boundary
                    .route(&route.routing, src, dst, |s, a, b| snaps[s].reaches(a, b));
            }
        }
    }

    /// All nodes reachable from `node` (including itself), ascending by
    /// global id.
    pub fn successors(&mut self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.successors_into(node, &mut out);
        out
    }

    /// [`ShardedReader::successors`] into a reused buffer (cleared
    /// first): local decode per shard through the zero-alloc
    /// [`ServiceSnapshot::successors_into`], then the boundary expansion.
    pub fn successors_into(&mut self, node: NodeId, out: &mut Vec<NodeId>) {
        self.pin();
        let route = &self.route;
        let snaps = &self.pinned;
        out.clear();
        if node.index() >= route.routing.node_count() {
            return;
        }
        let ss = route.routing.shard(node);
        snaps[ss].successors_into(route.routing.local(node), &mut self.seen);
        out.extend(self.seen.iter().filter_map(|&l| route.routing.global_get(ss, l)));
        if !route.boundary.is_empty() {
            let set = route
                .boundary
                .reachable_from(&route.routing, node, |s, a, b| snaps[s].reaches(a, b));
            for j in set.iter() {
                let exit = route.boundary.nodes[j];
                let sb = route.routing.shard(exit);
                snaps[sb].successors_into(route.routing.local(exit), &mut self.seen);
                out.extend(self.seen.iter().filter_map(|&l| route.routing.global_get(sb, l)));
            }
            out.sort_unstable();
            out.dedup();
        } else {
            out.sort_unstable();
        }
    }

    /// All nodes that reach `node` (including itself), ascending by global
    /// id.
    pub fn predecessors(&mut self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.predecessors_into(node, &mut out);
        out
    }

    /// [`ShardedReader::predecessors`] into a reused buffer (cleared
    /// first).
    pub fn predecessors_into(&mut self, node: NodeId, out: &mut Vec<NodeId>) {
        self.pin();
        let route = &self.route;
        let snaps = &self.pinned;
        out.clear();
        if node.index() >= route.routing.node_count() {
            return;
        }
        let sd = route.routing.shard(node);
        snaps[sd].predecessors_into(route.routing.local(node), &mut self.stab, &mut self.seen);
        out.extend(self.seen.iter().filter_map(|&l| route.routing.global_get(sd, l)));
        if !route.boundary.is_empty() {
            let set = route
                .boundary
                .reaching_to(&route.routing, node, |s, a, b| snaps[s].reaches(a, b));
            for j in set.iter() {
                let entry = route.boundary.nodes[j];
                let sb = route.routing.shard(entry);
                snaps[sb].predecessors_into(
                    route.routing.local(entry),
                    &mut self.stab,
                    &mut self.seen,
                );
                out.extend(self.seen.iter().filter_map(|&l| route.routing.global_get(sb, l)));
            }
            out.sort_unstable();
            out.dedup();
        } else {
            out.sort_unstable();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::ServiceOp;

    /// Three weak components plus an isolated node (id 9).
    fn forest() -> DiGraph {
        let mut g = DiGraph::from_edges([
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3), // component A: diamond 0..=3
            (4, 5),
            (5, 6), // component B: path 4..=6
            (7, 8), // component C
        ]);
        g.add_node();
        g
    }

    fn all_pairs(n: usize) -> Vec<(NodeId, NodeId)> {
        let mut pairs = Vec::with_capacity(n * n);
        for s in 0..n {
            for d in 0..n {
                pairs.push((NodeId(s as u32), NodeId(d as u32)));
            }
        }
        pairs
    }

    fn assert_matches_unsharded(sc: &ShardedClosure, flat: &CompressedClosure) {
        let n = flat.node_count();
        assert_eq!(sc.node_count(), n);
        for &(s, d) in &all_pairs(n) {
            assert_eq!(
                sc.reaches(s, d),
                flat.reaches(s, d),
                "reaches({s:?}, {d:?}) diverged"
            );
        }
        let pairs = all_pairs(n);
        assert_eq!(sc.reaches_batch(&pairs), flat.reaches_batch(&pairs));
        for u in 0..n {
            let v = NodeId(u as u32);
            let mut want = flat.successors(v);
            want.sort_unstable();
            assert_eq!(sc.successors(v), want, "successors({u}) diverged");
            let mut want = flat.predecessors(v);
            want.sort_unstable();
            assert_eq!(sc.predecessors(v), want, "predecessors({u}) diverged");
        }
    }

    #[test]
    fn multi_component_matches_unsharded() {
        let g = forest();
        let flat = CompressedClosure::build(&g).unwrap();
        for shards in [1, 2, 3, 8] {
            let sc = ShardedClosure::build(ClosureConfig::new(), &g, shards).unwrap();
            assert!(sc.audit().is_ok(), "audit: {:?}", sc.audit());
            assert_eq!(sc.cross_arc_count(), 0, "weak components never split");
            assert_matches_unsharded(&sc, &flat);
        }
    }

    #[test]
    fn giant_component_routes_through_boundary() {
        // One dominant component: a path with chords, level-cut into bands.
        let mut edges: Vec<(u32, u32)> = (0..19).map(|i| (i, i + 1)).collect();
        edges.extend([(0, 10), (3, 15), (5, 18)]);
        let g = DiGraph::from_edges(edges);
        let flat = CompressedClosure::build(&g).unwrap();
        let sc = ShardedClosure::build(ClosureConfig::new(), &g, 4).unwrap();
        assert!(sc.shard_count() > 1);
        assert!(sc.cross_arc_count() > 0, "level cut must produce cross arcs");
        assert!(sc.audit().is_ok(), "audit: {:?}", sc.audit());
        assert!(sc.verify().is_ok(), "verify: {:?}", sc.verify());
        assert_matches_unsharded(&sc, &flat);
    }

    #[test]
    fn update_stream_stays_equivalent() {
        let g = forest();
        let mut flat = CompressedClosure::build(&g).unwrap();
        let mut sc = ShardedClosure::build(ClosureConfig::new(), &g, 3).unwrap();
        // A churn script hitting every op class, including cross-shard
        // arcs (component A and component B live on different shards).
        let a = |i: u32| NodeId(i);
        // Cross-shard arc: 3 (comp A) -> 4 (comp B).
        assert_eq!(sc.add_edge(a(3), a(4)).unwrap(), flat.add_edge(a(3), a(4)).unwrap());
        // Cycle attempt across the boundary must be rejected identically.
        assert!(matches!(sc.add_edge(a(6), a(0)), Err(UpdateError::WouldCreateCycle { .. })));
        assert!(matches!(flat.add_edge(a(6), a(0)), Err(UpdateError::WouldCreateCycle { .. })));
        // New node with parents on two shards.
        let zs = sc.add_node_with_parents(&[a(6), a(8)]).unwrap();
        let zf = flat.add_node_with_parents(&[a(6), a(8)]).unwrap();
        assert_eq!(zs, zf);
        // Refinement with cross-shard parents (parents of the new node).
        // The flat closure was built with reserve 0, so its refine path is
        // exhausted; mirror the sharded layer's documented degradation.
        let rs = sc.refine_insert(zs, &[a(6), a(8)]).unwrap();
        let rf = match flat.refine_insert(zf, &[a(6), a(8)]) {
            Ok(z) => z,
            Err(UpdateError::ReserveExhausted(_)) => {
                let z = flat.add_node_with_parents(&[a(6), a(8)]).unwrap();
                flat.add_edge(z, zf).unwrap();
                z
            }
            Err(e) => panic!("flat refine failed: {e}"),
        };
        assert_eq!(rs, rf);
        // Remove the cross arc again, then a node with cross arcs.
        sc.remove_edge(a(3), a(4)).unwrap();
        flat.remove_edge(a(3), a(4)).unwrap();
        sc.remove_node(a(6)).unwrap();
        flat.remove_node(a(6)).unwrap();
        sc.relabel();
        flat.relabel();
        assert!(sc.audit().is_ok(), "audit: {:?}", sc.audit());
        assert!(sc.verify().is_ok(), "verify: {:?}", sc.verify());
        assert_matches_unsharded(&sc, &flat);
    }

    #[test]
    fn sharded_service_matches_flat_service_after_flush() {
        let g = forest();
        // A refinement reserve keeps the flat writer's Refine on the §4.1
        // fast path, so both services apply every op below.
        let cc = ClosureConfig::new().reserve(8);
        let sc = ShardedClosure::build(cc, &g, 3).unwrap();
        let service = ShardedService::start(sc, ServiceConfig::new().audit(true));
        let flat = cc.build(&g).unwrap();
        let flat_service = ClosureService::start(flat, ServiceConfig::new().audit(true));
        let mut reader = service.reader();
        let mut flat_reader = flat_service.reader();

        let ops = [
            ServiceOp::AddEdge { src: NodeId(3), dst: NodeId(4) }, // cross
            ServiceOp::AddNode { parents: vec![NodeId(6), NodeId(8)] }, // cross parents
            ServiceOp::Refine { child: NodeId(3) },
            ServiceOp::AddEdge { src: NodeId(6), dst: NodeId(0) }, // cycle: rejected
            ServiceOp::AddEdge { src: NodeId(7), dst: NodeId(7) }, // self-loop: rejected
            ServiceOp::RemoveEdge { src: NodeId(3), dst: NodeId(4) }, // cross removal
            ServiceOp::RemoveNode { node: NodeId(5) },
            ServiceOp::Relabel,
        ];
        for op in ops {
            service.submit(op.clone()).unwrap();
            flat_service.submit(op).unwrap();
            let stats = service.flush();
            flat_service.flush();
            assert_eq!(stats.skipped, 0, "shard writers must never skip");
            assert_eq!(stats.audit_violation, None);
            let n = flat_reader.refresh().node_count();
            for &(s, d) in &all_pairs(n) {
                assert_eq!(
                    reader.reaches(s, d),
                    flat_reader.reaches(s, d),
                    "reaches({s:?}, {d:?}) diverged post-flush"
                );
            }
            for u in 0..n {
                let v = NodeId(u as u32);
                let mut want = flat_reader.successors(v);
                want.sort_unstable();
                assert_eq!(reader.successors(v), want, "successors({u})");
                let mut want = flat_reader.predecessors(v);
                want.sort_unstable();
                assert_eq!(reader.predecessors(v), want, "predecessors({u})");
            }
            let pairs = all_pairs(n);
            assert_eq!(reader.reaches_batch(&pairs), flat_reader.reaches_batch(&pairs));
        }
        let stats = service.stats();
        assert_eq!(stats.rejected, 2, "cycle + self-loop rejected at the front");
        let (_, sc) = service.shutdown();
        assert!(sc.audit().is_ok(), "audit: {:?}", sc.audit());
        assert!(sc.verify().is_ok(), "verify: {:?}", sc.verify());
    }

    #[test]
    fn reader_tolerates_shard_snapshots_ahead_of_routing() {
        let g = DiGraph::from_edges([(0, 1)]);
        let sc = ShardedClosure::build(ClosureConfig::new(), &g, 1).unwrap();
        let service = ShardedService::start(sc, ServiceConfig::new());
        let mut reader = service.reader();
        assert_eq!(reader.successors(NodeId(0)).len(), 2);
        service.submit(ServiceOp::AddNode { parents: vec![NodeId(0)] }).unwrap();
        // Wait for the shard writer to apply and publish *without* a
        // flush, so the pinned routing stays one node behind the shard
        // snapshot — the torn-pin state a network reader can observe.
        for _ in 0..5000 {
            if service.stats().applied >= 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(service.stats().applied, 1, "shard writer publish timed out");
        // The new node is invisible to the pinned routing: the decode must
        // skip it, not index out of bounds.
        let succ = reader.successors(NodeId(0));
        assert!(succ.iter().all(|v| v.index() < 2), "unrouted node leaked: {succ:?}");
        let preds = reader.predecessors(NodeId(1));
        assert!(preds.iter().all(|v| v.index() < 2));
        service.flush();
        assert_eq!(reader.successors(NodeId(0)).len(), 3, "visible after routing publish");
        let (_, sc) = service.shutdown();
        assert!(sc.audit().is_ok());
    }

    #[test]
    fn submit_racing_close_is_applied_or_rejected_never_lost() {
        let g = DiGraph::from_edges([(0, 1), (2, 3)]);
        let sc = ShardedClosure::build(ClosureConfig::new(), &g, 2).unwrap();
        let service = ShardedService::start(sc, ServiceConfig::new());
        let accepted = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..200 {
                        match service.submit(ServiceOp::AddNode { parents: vec![NodeId(1)] }) {
                            Ok(_) => {
                                accepted.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ServiceClosed) => break,
                        }
                        std::thread::yield_now();
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
            service.close();
        });
        let ok = accepted.load(Ordering::Relaxed);
        service.close(); // idempotent
        assert_eq!(service.submit(ServiceOp::Relabel), Err(ServiceClosed));
        assert_eq!(service.submit_batch([ServiceOp::Relabel]), Err(ServiceClosed));
        assert!(service.submit_with_outcome(ServiceOp::Relabel).is_err());
        let (stats, sc) = service.shutdown();
        // Every Ok(seq) was validated, routed, and applied by a shard
        // writer; every Err(ServiceClosed) touched nothing.
        assert_eq!(stats.submitted, ok, "submitted must equal the Ok count");
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.routed, ok, "each accepted AddNode routes one shard op");
        assert_eq!(stats.applied, stats.routed, "routed ops are never dropped");
        assert_eq!(stats.skipped, 0);
        assert!(sc.audit().is_ok(), "audit: {:?}", sc.audit());
    }

    #[test]
    fn outcome_reports_assigned_node_ids_and_verdicts() {
        let g = DiGraph::from_edges([(0, 1)]);
        let sc = ShardedClosure::build(ClosureConfig::new(), &g, 2).unwrap();
        let service = ShardedService::start(sc, ServiceConfig::new());
        let (_, out) = service
            .submit_with_outcome(ServiceOp::AddNode { parents: vec![NodeId(1)] })
            .unwrap();
        assert_eq!(out, SubmitOutcome::Routed { new_node: Some(NodeId(2)) });
        let (_, out) = service
            .submit_with_outcome(ServiceOp::AddEdge { src: NodeId(0), dst: NodeId(2) })
            .unwrap();
        assert_eq!(out, SubmitOutcome::Routed { new_node: None });
        let (_, out) = service
            .submit_with_outcome(ServiceOp::AddEdge { src: NodeId(0), dst: NodeId(2) })
            .unwrap();
        assert_eq!(out, SubmitOutcome::Noop, "duplicate arc is a no-op");
        let (_, out) = service
            .submit_with_outcome(ServiceOp::AddEdge { src: NodeId(2), dst: NodeId(0) })
            .unwrap();
        assert_eq!(out, SubmitOutcome::Rejected, "cycle is rejected");
        let mut reader = service.reader();
        service.flush();
        assert!(reader.reaches(NodeId(0), NodeId(2)));
        let (stats, sc) = service.shutdown();
        assert_eq!(stats.skipped, 0);
        assert!(sc.audit().is_ok());
    }

    #[test]
    fn front_end_rejects_what_flat_writer_would_skip() {
        let g = DiGraph::from_edges([(0, 1)]);
        let sc = ShardedClosure::build(ClosureConfig::new(), &g, 2).unwrap();
        let service = ShardedService::start(sc, ServiceConfig::new());
        service.submit(ServiceOp::AddEdge { src: NodeId(9), dst: NodeId(0) }).unwrap(); // unknown
        service.submit(ServiceOp::RemoveEdge { src: NodeId(1), dst: NodeId(0) }).unwrap(); // no such edge
        service.submit(ServiceOp::RemoveNode { node: NodeId(44) }).unwrap(); // unknown
        service.submit(ServiceOp::Refine { child: NodeId(44) }).unwrap(); // unknown
        service.submit(ServiceOp::AddEdge { src: NodeId(1), dst: NodeId(0) }).unwrap(); // cycle
        let stats = service.flush();
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.rejected, 5);
        assert_eq!(stats.routed, 0);
        assert_eq!(stats.skipped, 0);
        let (_, sc) = service.shutdown();
        assert!(sc.verify().is_ok());
    }

    #[test]
    fn shutdown_roundtrips_through_service() {
        let mut edges: Vec<(u32, u32)> = (0..15).map(|i| (i, i + 1)).collect();
        edges.push((2, 9));
        let g = DiGraph::from_edges(edges);
        let sc = ShardedClosure::build(ClosureConfig::new(), &g, 4).unwrap();
        let before: Vec<bool> = sc.reaches_batch(&all_pairs(16));
        let service = ShardedService::start(sc, ServiceConfig::new());
        let (stats, sc) = service.shutdown();
        assert_eq!(stats.rejected, 0);
        assert_eq!(before, sc.reaches_batch(&all_pairs(16)));
        assert!(sc.audit().is_ok(), "audit: {:?}", sc.audit());
    }
}
