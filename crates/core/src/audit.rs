//! Cheap structural invariant audit for the compressed closure.
//!
//! [`CompressedClosure::verify`] is the *semantic* oracle: it recomputes
//! per-node DFS ground truth and costs O(n·m) — far too slow to run after
//! every update in a churn test or fuzzer. [`CompressedClosure::audit`] is
//! its *structural* counterpart: it checks every representation invariant
//! the §4 update paths are supposed to maintain, in
//! O(n + total intervals + tombstones) with only logarithmic number-line
//! lookups on top — no graph traversal beyond the out-edges of a
//! constant-size node sample (invariant 9). A closure can
//! be structurally sound yet semantically wrong (that is what the
//! differential fuzz oracle is for), but in practice the update-path bugs
//! this repository has seen (gap exhaustion, tombstone leaks, cover drift)
//! all break one of these invariants first.
//!
//! Invariants checked (see DESIGN.md, "Structural audit"):
//!
//! 1. **Shape** — `post`/`low`/`advertised_hi`/`sets`, the tree cover and
//!    the graph all agree on the node count.
//! 2. **Label sanity** — `1 <= low[v] <= post[v] <= advertised_hi[v]`.
//! 3. **Number-line coherence** — `line.node_at(post[v]) == v` for every
//!    node and `line.live_count() == n` (together: the live slots are
//!    exactly the nodes' postorder numbers, a bijection).
//! 4. **Reserve-tail freedom** — the advertised tail `(post[v],
//!    advertised_hi[v]]` contains no occupied number: refinements consume
//!    the tail top-down and shrink `advertised_hi` past what they assign.
//! 5. **Tombstone accounting** — the line's cached live count matches a
//!    full scan and `total_count - live_count == tombstone_count`.
//! 6. **Interval-set invariants** — every set is sorted by `lo` with no
//!    member subsuming another, and subsumes the node's own tree interval
//!    `[low, post]` (the reflexive fact every label must encode).
//! 7. **Tree-cover consistency** — parent/children arrays are mutually
//!    consistent (every child entry points back, no node is listed twice),
//!    parent chains are acyclic, and **every tree arc is an arc of the
//!    base relation** (cover-vs-graph consistency).
//! 8. **Plane coherence** — when a frozen [`crate::QueryPlane`] is present,
//!    its snapshot (postorder numbers, interval totals, number-line length)
//!    still mirrors the mutable labeling. Updates must invalidate the plane
//!    before mutating, so a divergence here means a stale snapshot survived
//!    an update path.
//! 9. **Sampled propagation fixed point** — for a small deterministic
//!    sample of nodes, the stored interval set covers exactly what one
//!    reverse-topological propagation step would produce from the node's
//!    tree interval and its graph successors' current sets (compared after
//!    canonical merging, since §4.1 refinements legitimately leave
//!    coverage-equal but differently-shaped sets). Every correct sweep —
//!    global or scoped (see DESIGN.md, "Scoped deletion recompute") — is a
//!    fixed point of this step, so a scoped recompute that diverges from
//!    the global result on a sampled node is caught here without paying
//!    for a second full sweep. This is the one invariant that walks graph
//!    adjacency, bounded by the sampled nodes' out-degrees.

use tc_graph::NodeId;
use tc_interval::Interval;

use crate::CompressedClosure;

impl CompressedClosure {
    /// Checks the closure's structural invariants, returning a description
    /// of the first violation found.
    ///
    /// Cheap enough to run after *every* update: O(n + total intervals +
    /// tombstones) plus O(log n) number-line lookups per node, and — unlike
    /// [`CompressedClosure::verify`] — performs no per-node graph
    /// traversal. See the module docs for the exact invariant list.
    pub fn audit(&self) -> Result<(), String> {
        let n = self.graph.node_count();

        // 1. Shape: every parallel structure agrees on n.
        if self.lab.post.len() != n
            || self.lab.low.len() != n
            || self.lab.advertised_hi.len() != n
            || self.lab.sets.len() != n
            || self.cover.node_count() != n
        {
            return Err(format!(
                "shape mismatch: graph {n}, post {}, low {}, advertised_hi {}, sets {}, cover {}",
                self.lab.post.len(),
                self.lab.low.len(),
                self.lab.advertised_hi.len(),
                self.lab.sets.len(),
                self.cover.node_count()
            ));
        }

        // 5. Tombstone accounting on the number line.
        if !self.lab.line.check_invariants() {
            return Err("number line: cached live count disagrees with slot scan".into());
        }
        if self.lab.line.total_count() - self.lab.line.live_count()
            != self.lab.line.tombstone_count()
        {
            return Err(format!(
                "number line: total {} - live {} != tombstones {}",
                self.lab.line.total_count(),
                self.lab.line.live_count(),
                self.lab.line.tombstone_count()
            ));
        }
        // 3 (half): live slots can only be the n nodes' numbers.
        if self.lab.line.live_count() != n {
            return Err(format!(
                "number line: {} live slots for {n} nodes",
                self.lab.line.live_count()
            ));
        }

        for v in self.graph.nodes() {
            let ix = v.index();
            let (low, post, hi) = (self.lab.low[ix], self.lab.post[ix], self.lab.advertised_hi[ix]);

            // 2. Label ordering.
            if !(1 <= low && low <= post && post <= hi) {
                return Err(format!(
                    "{v:?}: label ordering violated: low {low}, post {post}, advertised_hi {hi}"
                ));
            }

            // 3. The node owns its number on the line.
            if self.lab.line.node_at(post) != Some(v.0) {
                return Err(format!(
                    "{v:?}: line slot {post} holds {:?}, not this node",
                    self.lab.line.node_at(post)
                ));
            }

            // 4. The advertised reserve tail must be free of numbers.
            if hi > post && self.lab.line.used_in_range(post + 1, hi) != 0 {
                return Err(format!(
                    "{v:?}: reserve tail ({post}, {hi}] contains occupied numbers"
                ));
            }

            // 6. Interval-set invariants + tree interval containment.
            let set = &self.lab.sets[ix];
            if !set.check_invariants() {
                return Err(format!("{v:?}: interval set unsorted or subsumption leaked: {set}"));
            }
            if !set.subsumes(Interval::new(low, post)) {
                return Err(format!(
                    "{v:?}: label set {set} does not cover own tree interval [{low},{post}]"
                ));
            }

            // 7a. Tree arcs must be arcs of the base relation, and child
            // lists must point back. (Scanning the predecessor list bounds
            // the total cost by the in-degree sum along tree arcs <= m.)
            if let Some(p) = self.cover.parent(v) {
                if p.index() >= n {
                    return Err(format!("{v:?}: tree parent {p:?} out of range"));
                }
                if !self.graph.predecessors(v).contains(&p) {
                    return Err(format!("{v:?}: tree arc ({p:?},{v:?}) is not a graph arc"));
                }
            }
        }

        // 7b. Children lists are the exact inverse of the parent array: each
        // entry points back, and every node with a parent is listed exactly
        // once. One O(n) sweep with a seen-marker.
        let mut listed = vec![false; n];
        let mut child_slots = 0usize;
        for p in self.graph.nodes() {
            for &c in self.cover.children(p) {
                if c.index() >= n || self.cover.parent(c) != Some(p) {
                    return Err(format!("cover: child list of {p:?} lists {c:?} which points elsewhere"));
                }
                if std::mem::replace(&mut listed[c.index()], true) {
                    return Err(format!("cover: {c:?} appears in two child lists"));
                }
                child_slots += 1;
            }
        }
        let with_parent = (0..n)
            .filter(|&ix| self.cover.parent(NodeId::from_index(ix)).is_some())
            .count();
        if child_slots != with_parent {
            return Err(format!(
                "cover: {child_slots} child-list entries for {with_parent} parented nodes"
            ));
        }

        // 7c. Parent chains are acyclic: color-propagating walk, O(n) total
        // (each node is finalized once).
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on current path, 2 done
        let mut path: Vec<usize> = Vec::new();
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            let mut cur = start;
            loop {
                match state[cur] {
                    1 => return Err(format!("cover: parent chain through node {cur} is cyclic")),
                    2 => break,
                    _ => {}
                }
                state[cur] = 1;
                path.push(cur);
                match self.cover.parent(NodeId::from_index(cur)) {
                    Some(p) => cur = p.index(),
                    None => break,
                }
            }
            for ix in path.drain(..) {
                state[ix] = 2;
            }
        }

        // 8. A frozen plane must still mirror the labeling it snapshot.
        if let Some(plane) = &self.plane {
            plane.check_consistency(&self.lab).map_err(|e| format!("query plane: {e}"))?;
        }
        if let Some(paged) = &self.paged {
            paged.check_consistency(&self.lab).map_err(|e| format!("paged plane: {e}"))?;
        }

        // 9. Sampled propagation fixed point: a node's stored set must
        // cover exactly its tree interval plus everything inherited from
        // its current successors. Both the global and the scoped deletion
        // recompute leave every node in this state, so checking it on a
        // deterministic sample cross-checks the scoped path against what
        // the global sweep would have produced — at O(out-degree + set
        // sizes) per sampled node instead of a second full propagation.
        // Representations may differ (a refinement shrinks an advertised
        // interval other nodes hold wide copies of), so coverage is
        // compared through the canonical merged form.
        const FIXED_POINT_SAMPLE: usize = 8;
        if n > 0 {
            let mut scratch: Vec<Interval> = Vec::new();
            for k in 0..FIXED_POINT_SAMPLE.min(n) as u64 {
                let ix = (k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % n;
                let v = NodeId::from_index(ix);
                let mut expected = tc_interval::IntervalSet::singleton(Interval::new(
                    self.lab.low[ix],
                    self.lab.post[ix],
                ));
                for &q in self.graph.successors(v) {
                    crate::propagate::inherit_into_scratch(&self.lab, q, &mut scratch);
                    for &iv in &scratch {
                        expected.insert(iv);
                    }
                }
                expected.merge_adjacent();
                let mut stored = self.lab.sets[ix].clone();
                stored.merge_adjacent();
                if stored != expected {
                    return Err(format!(
                        "{v:?}: stored set {stored} is not the propagation fixed point \
                         {expected} of its successors"
                    ));
                }
            }
        }

        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{ClosureConfig, CompressedClosure};
    use tc_graph::{generators, DiGraph};
    use tc_interval::IntervalSet;

    fn base() -> CompressedClosure {
        let g = DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        ClosureConfig::new().gap(16).reserve(3).build(&g).unwrap()
    }

    #[test]
    fn fresh_closures_pass() {
        for seed in 0..4 {
            let g = generators::random_dag(generators::RandomDagConfig {
                nodes: 60,
                avg_out_degree: 2.0,
                seed,
            });
            for config in [
                ClosureConfig::new(),
                ClosureConfig::new().gap(8).reserve(2),
                ClosureConfig::new().gap(1),
                ClosureConfig::new().merge_adjacent(true),
            ] {
                config.build(&g).unwrap().audit().unwrap();
            }
        }
        CompressedClosure::build(&DiGraph::new()).unwrap().audit().unwrap();
    }

    #[test]
    fn audit_survives_every_update_kind() {
        let mut c = base();
        c.audit().unwrap();
        let x = c.add_node_with_parents(&[tc_graph::NodeId(1), tc_graph::NodeId(2)]).unwrap();
        c.audit().unwrap();
        c.add_edge(tc_graph::NodeId(4), x).unwrap();
        c.audit().unwrap();
        let preds = c.graph().predecessors(tc_graph::NodeId(4)).to_vec();
        c.refine_insert(tc_graph::NodeId(4), &preds).unwrap();
        c.audit().unwrap();
        c.remove_edge(tc_graph::NodeId(1), tc_graph::NodeId(3)).unwrap();
        c.audit().unwrap();
        c.remove_node(tc_graph::NodeId(2)).unwrap();
        c.audit().unwrap();
        c.relabel();
        c.audit().unwrap();
        c.rebuild();
        c.audit().unwrap();
    }

    #[test]
    fn corrupted_post_is_caught() {
        let mut c = base();
        // Swap one node's post number without touching the line.
        c.lab.post[1] += 1;
        assert!(c.audit().unwrap_err().contains("line slot"));
    }

    #[test]
    fn corrupted_low_is_caught() {
        let mut c = base();
        c.lab.low[2] = c.lab.post[2] + 1;
        assert!(c.audit().unwrap_err().contains("label ordering"));
    }

    #[test]
    fn dropped_tree_interval_is_caught() {
        let mut c = base();
        c.lab.sets[0] = IntervalSet::new();
        assert!(c.audit().unwrap_err().contains("does not cover own tree interval"));
    }

    #[test]
    fn cover_graph_drift_is_caught() {
        let mut c = base();
        // Remove the graph arc under a tree arc without telling the cover.
        let child = tc_graph::NodeId(1);
        let parent = c.cover().parent(child).unwrap();
        c.graph.remove_edge(parent, child);
        assert!(c.audit().unwrap_err().contains("not a graph arc"));
    }

    #[test]
    fn stale_line_slot_is_caught() {
        let mut c = base();
        // Tombstone a live number behind the labeling's back.
        c.lab.line.tombstone(c.lab.post[3]);
        assert!(c.audit().is_err());
    }

    #[test]
    fn stale_plane_is_caught() {
        let mut c = base();
        c.freeze();
        c.audit().unwrap();
        // Grow a label behind the frozen plane's back (every real update
        // path invalidates the plane before mutating; this simulates one
        // that forgot). The new interval is structurally valid, so only the
        // plane-coherence check can object.
        let hi = c.lab.advertised_hi.iter().copied().max().unwrap_or(0);
        c.lab.sets[0].insert(tc_interval::Interval::point(hi + 100));
        assert!(c.audit().unwrap_err().contains("query plane"));
    }

    #[test]
    fn phantom_interval_is_caught_by_fixed_point_check() {
        let mut c = base();
        // A far-away point interval is structurally fine (sorted, own tree
        // interval still covered) but is not derivable from any successor —
        // only the sampled fixed-point check can object. Node 0 is always
        // in the deterministic sample (hash of k = 0).
        let hi = c.lab.advertised_hi.iter().copied().max().unwrap_or(0);
        c.lab.sets[0].insert(tc_interval::Interval::point(hi + 100));
        assert!(c.audit().unwrap_err().contains("fixed point"));
    }

    #[test]
    fn dropped_inherited_interval_is_caught_by_fixed_point_check() {
        let mut c = base();
        // Node 2 reaches 3 over a non-tree arc, so its set must hold 3's
        // intervals beyond its own tree interval; resetting it to the bare
        // tree singleton passes invariants 1-8 but not the fixed point.
        let ix = 2;
        c.lab.sets[ix] = IntervalSet::singleton(tc_interval::Interval::new(
            c.lab.low[ix],
            c.lab.post[ix],
        ));
        assert!(c.audit().unwrap_err().contains("fixed point"));
    }

    #[test]
    fn occupied_reserve_tail_is_caught() {
        let mut c = base();
        // Assign a rogue number inside node 0's advertised tail.
        let post = c.lab.post[0];
        if c.lab.advertised_hi[0] > post {
            // Fake an extra node so counts still line up, then point the
            // line at it from inside the tail.
            c.lab.line.tombstone(c.lab.post[4]);
            c.lab.line.assign(post + 1, 4);
            c.lab.post[4] = post + 1;
            let r = c.audit();
            assert!(r.is_err());
        }
    }
}
