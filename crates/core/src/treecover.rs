//! Tree covers and the paper's Alg1.
//!
//! A *tree cover* of a DAG `G` is a spanning forest using only arcs of `G`:
//! every node keeps at most one of its incoming arcs as its *tree arc* (the
//! paper hooks parent-less nodes to a virtual root, which we leave
//! implicit). The choice of tree cover determines how many non-tree
//! intervals survive subsumption; **Alg1** (§3.2) picks, for each node in
//! topological order, the immediate predecessor with the largest predecessor
//! set, which Theorem 1 proves yields the minimum total interval count among
//! all tree covers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tc_graph::{topo, BitSet, DiGraph, NodeId};

/// A spanning forest over a DAG's nodes, using only DAG arcs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeCover {
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
}

impl TreeCover {
    /// Builds a cover from an explicit parent assignment.
    ///
    /// # Panics
    ///
    /// Panics if a parent edge is not an arc of `g` (a tree cover may only
    /// use arcs of the graph), or if the assignment length mismatches.
    pub fn from_parents(g: &DiGraph, parent: Vec<Option<NodeId>>) -> Self {
        assert_eq!(parent.len(), g.node_count(), "parent vector length mismatch");
        let mut children = vec![Vec::new(); g.node_count()];
        for (ix, &p) in parent.iter().enumerate() {
            if let Some(p) = p {
                let child = NodeId::from_index(ix);
                assert!(g.has_edge(p, child), "tree arc ({p:?},{child:?}) is not a graph arc");
                children[p.index()].push(child);
            }
        }
        TreeCover { parent, children }
    }

    /// Reconstructs a cover from explicit parent and children arrays (the
    /// deserialization path, which must preserve children *order* because
    /// postorder numbering depends on it). Returns `None` if the two arrays
    /// are mutually inconsistent.
    pub fn from_raw(parent: Vec<Option<NodeId>>, children: Vec<Vec<NodeId>>) -> Option<Self> {
        if parent.len() != children.len() {
            return None;
        }
        // Every child list entry must point back via parent, and counts
        // must match exactly.
        let mut child_slots = 0usize;
        for (ix, kids) in children.iter().enumerate() {
            for &k in kids {
                if parent.get(k.index()).copied().flatten() != Some(NodeId::from_index(ix)) {
                    return None;
                }
                child_slots += 1;
            }
        }
        let with_parent = parent.iter().filter(|p| p.is_some()).count();
        if child_slots != with_parent {
            return None;
        }
        Some(TreeCover { parent, children })
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// The tree parent of `node` (`None` for forest roots, i.e. children of
    /// the paper's virtual root).
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node.index()]
    }

    /// The tree children of `node`, in insertion order (the order controls
    /// postorder numbering and hence adjacent-interval merging — see the
    /// paper's Fig 3.8 on order dependence).
    #[inline]
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.index()]
    }

    /// Forest roots in ascending id order.
    pub fn roots(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.parent
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(ix, _)| NodeId::from_index(ix))
    }

    /// Whether the arc `(src, dst)` is a tree arc of this cover.
    #[inline]
    pub fn is_tree_arc(&self, src: NodeId, dst: NodeId) -> bool {
        self.parent(dst) == Some(src)
    }

    /// Whether `anc` is a tree ancestor of `node` (reflexive).
    pub fn is_tree_ancestor(&self, anc: NodeId, node: NodeId) -> bool {
        let mut cur = Some(node);
        while let Some(c) = cur {
            if c == anc {
                return true;
            }
            cur = self.parent(c);
        }
        false
    }

    /// Depth of `node` (roots have depth 0).
    pub fn depth(&self, node: NodeId) -> usize {
        let mut d = 0;
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Iterates over the subtree of `node` (including `node`) in preorder.
    pub fn subtree(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend(self.children(n).iter().copied());
        }
        out
    }

    /// Re-attaches `node` as a forest root (used by tree-arc deletion) and
    /// returns its former parent.
    pub(crate) fn detach(&mut self, node: NodeId) -> Option<NodeId> {
        let old = self.parent[node.index()].take();
        if let Some(p) = old {
            let kids = &mut self.children[p.index()];
            let pos = kids.iter().position(|&c| c == node).expect("child list out of sync");
            kids.remove(pos);
        }
        old
    }

    /// Attaches `node` (currently a root) under `parent`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn attach(&mut self, parent: NodeId, node: NodeId) {
        debug_assert!(self.parent[node.index()].is_none(), "attach of non-root");
        self.parent[node.index()] = Some(parent);
        self.children[parent.index()].push(node);
    }

    /// Appends a fresh node with the given parent. Returns its id.
    pub(crate) fn push_node(&mut self, parent: Option<NodeId>) -> NodeId {
        let id = NodeId::from_index(self.parent.len());
        self.parent.push(parent);
        self.children.push(Vec::new());
        if let Some(p) = parent {
            self.children[p.index()].push(id);
        }
        id
    }

    /// Validates structural invariants: acyclicity of parent chains and
    /// parent/children consistency.
    pub fn check_consistency(&self, g: &DiGraph) -> bool {
        if self.parent.len() != g.node_count() {
            return false;
        }
        for (ix, &p) in self.parent.iter().enumerate() {
            let node = NodeId::from_index(ix);
            if let Some(p) = p {
                if !g.has_edge(p, node) || !self.children[p.index()].contains(&node) {
                    return false;
                }
            }
        }
        // Every node must reach a root by parent chain within n steps.
        for start in 0..self.parent.len() {
            let mut cur = NodeId::from_index(start);
            let mut steps = 0;
            while let Some(p) = self.parent(cur) {
                cur = p;
                steps += 1;
                if steps > self.parent.len() {
                    return false; // cycle in parent chain
                }
            }
        }
        true
    }
}

/// How to choose the tree cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverStrategy {
    /// The paper's Alg1: tree parent = immediate predecessor with the
    /// largest predecessor set (optimal by Theorem 1). Ties break to the
    /// smaller node id, so builds are deterministic.
    Optimal,
    /// Tree parent = first immediate predecessor in adjacency order. The
    /// naive choice, used as an ablation baseline.
    FirstParent,
    /// Tree parent = uniformly random immediate predecessor.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Tree parent = the immediate predecessor with the greatest tree depth
    /// so far (a greedy "deep chains" heuristic, for ablation).
    Deepest,
}

impl CoverStrategy {
    /// Computes a tree cover of `g` using `topo_order` (a valid topological
    /// order of `g`).
    pub fn compute(self, g: &DiGraph, topo_order: &[NodeId]) -> TreeCover {
        match self {
            CoverStrategy::Optimal => optimal_cover(g, topo_order),
            CoverStrategy::FirstParent => simple_cover(g, topo_order, |preds, _| preds[0]),
            CoverStrategy::Random { seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                simple_cover(g, topo_order, move |preds, _| {
                    preds[rng.random_range(0..preds.len())]
                })
            }
            CoverStrategy::Deepest => deepest_cover(g, topo_order),
        }
    }
}

/// The paper's Alg1 (§3.2):
///
/// ```text
/// Topologically sort G. Assume nodes with no predecessors are connected to
/// a virtual level-0 root.
/// For every node j in G, in topological order, do:
///   keep the incoming arc (i, j) whose i has the largest pred() set;
///   pred(j) := union over immediate predecessors i_k of {i_k} ∪ pred(i_k)
/// ```
///
/// Predecessor sets are maintained as bitsets; `size(pred(i))` is cached per
/// node so each comparison is O(1). Peak memory is n²/8 bytes for the
/// predecessor sets (12.5 MB at 10⁵ nodes) — transient, freed once the
/// cover is chosen; the closure itself never holds them.
pub fn optimal_cover(g: &DiGraph, topo_order: &[NodeId]) -> TreeCover {
    let n = g.node_count();
    let mut pred: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
    let mut pred_size = vec![0usize; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];

    for &j in topo_order {
        let preds = g.predecessors(j);
        if !preds.is_empty() {
            // Winner: largest pred set, ties to smaller id.
            let best = preds
                .iter()
                .copied()
                .min_by(|a, b| {
                    pred_size[b.index()]
                        .cmp(&pred_size[a.index()])
                        .then(a.0.cmp(&b.0))
                })
                .expect("non-empty");
            parent[j.index()] = Some(best);
        }
        // pred(j) = union over immediate predecessors of pred(i) ∪ {i}.
        // (Split the borrow: move j's set out, union, move back.)
        let mut pj = std::mem::replace(&mut pred[j.index()], BitSet::new(0));
        for &i in preds {
            pj.insert(i.index());
            pj.union_with(&pred[i.index()]);
        }
        pred_size[j.index()] = pj.len();
        pred[j.index()] = pj;
    }

    finish_cover(g, parent)
}

/// Level-parallel variant of [`optimal_cover`]: sweeps the topological
/// levels of `g` from the sources downward, fanning each level's nodes
/// across `threads` scoped workers.
///
/// Every predecessor of a node sits on a strictly higher level, so by the
/// time a level is processed all the predecessor sets (and their cached
/// sizes) it reads are final. Workers return each node's `(parent, pred)`
/// pair; the calling thread installs them after the join. The argmax and
/// its tie-break are the same as the serial sweep's and the union runs over
/// the same operands, so the resulting cover is identical to
/// `optimal_cover`'s for any valid topological order.
pub fn optimal_cover_levels(g: &DiGraph, levels: &topo::Levels, threads: usize) -> TreeCover {
    let n = g.node_count();
    let mut pred: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
    let mut pred_size = vec![0usize; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];

    for level in levels.iter_down() {
        let (pred_r, size_r) = (&pred, &pred_size);
        let results = crate::parallel::map_chunks(level, threads, |chunk| {
            chunk
                .iter()
                .map(|&j| {
                    let preds = g.predecessors(j);
                    let best = preds.iter().copied().min_by(|a, b| {
                        size_r[b.index()]
                            .cmp(&size_r[a.index()])
                            .then(a.0.cmp(&b.0))
                    });
                    let mut pj = BitSet::new(n);
                    for &i in preds {
                        pj.insert(i.index());
                        pj.union_with(&pred_r[i.index()]);
                    }
                    (best, pj)
                })
                .collect()
        });
        for (&j, (best, pj)) in level.iter().zip(results) {
            parent[j.index()] = best;
            pred_size[j.index()] = pj.len();
            pred[j.index()] = pj;
        }
    }

    finish_cover(g, parent)
}

fn simple_cover(
    g: &DiGraph,
    topo_order: &[NodeId],
    mut pick: impl FnMut(&[NodeId], NodeId) -> NodeId,
) -> TreeCover {
    let mut parent: Vec<Option<NodeId>> = vec![None; g.node_count()];
    for &j in topo_order {
        let preds = g.predecessors(j);
        if !preds.is_empty() {
            parent[j.index()] = Some(pick(preds, j));
        }
    }
    finish_cover(g, parent)
}

fn deepest_cover(g: &DiGraph, topo_order: &[NodeId]) -> TreeCover {
    let n = g.node_count();
    let mut depth = vec![0usize; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    for &j in topo_order {
        let preds = g.predecessors(j);
        if !preds.is_empty() {
            let best = preds
                .iter()
                .copied()
                .min_by(|a, b| depth[b.index()].cmp(&depth[a.index()]).then(a.0.cmp(&b.0)))
                .expect("non-empty");
            parent[j.index()] = Some(best);
            depth[j.index()] = depth[best.index()] + 1;
        }
    }
    finish_cover(g, parent)
}

fn finish_cover(g: &DiGraph, parent: Vec<Option<NodeId>>) -> TreeCover {
    let mut children = vec![Vec::new(); g.node_count()];
    for (ix, &p) in parent.iter().enumerate() {
        if let Some(p) = p {
            children[p.index()].push(NodeId::from_index(ix));
        }
    }
    // Deterministic child order (ascending id); callers wanting a specific
    // sibling order construct covers via `TreeCover::from_parents`.
    for kids in &mut children {
        kids.sort_unstable();
    }
    TreeCover { parent, children }
}

/// Enumerates *every* tree cover of `g` (the cartesian product of parent
/// choices per node), for brute-force optimality checks on small graphs.
///
/// Returns `None` if the number of covers exceeds `limit`.
pub fn enumerate_covers(g: &DiGraph, limit: usize) -> Option<Vec<TreeCover>> {
    let n = g.node_count();
    let mut total: usize = 1;
    for v in g.nodes() {
        let choices = g.in_degree(v).max(1);
        total = total.checked_mul(choices)?;
        if total > limit {
            return None;
        }
    }

    let mut covers = Vec::with_capacity(total);
    let mut choice = vec![0usize; n];
    loop {
        let parent: Vec<Option<NodeId>> = (0..n)
            .map(|ix| {
                let preds = g.predecessors(NodeId::from_index(ix));
                if preds.is_empty() {
                    None
                } else {
                    Some(preds[choice[ix]])
                }
            })
            .collect();
        covers.push(TreeCover::from_parents(g, parent));

        // Odometer increment over the per-node choice counts.
        let mut pos = 0;
        loop {
            if pos == n {
                return Some(covers);
            }
            let max = g.in_degree(NodeId::from_index(pos)).max(1);
            choice[pos] += 1;
            if choice[pos] < max {
                break;
            }
            choice[pos] = 0;
            pos += 1;
        }
    }
}

/// Convenience: compute a cover for `g` with the given strategy, doing the
/// topological sort internally.
pub fn cover_of(g: &DiGraph, strategy: CoverStrategy) -> Result<TreeCover, topo::CycleError> {
    let order = topo::topo_sort(g)?;
    Ok(strategy.compute(g, &order))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example shape: a diamond with a tail.
    fn diamond() -> DiGraph {
        DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn optimal_cover_spans_all_nodes() {
        let g = diamond();
        let cover = cover_of(&g, CoverStrategy::Optimal).unwrap();
        assert!(cover.check_consistency(&g));
        assert_eq!(cover.parent(NodeId(0)), None);
        assert_eq!(cover.parent(NodeId(1)), Some(NodeId(0)));
        assert_eq!(cover.parent(NodeId(2)), Some(NodeId(0)));
        // Node 3: both preds have pred-set {0} of size 1; tie breaks to 1.
        assert_eq!(cover.parent(NodeId(3)), Some(NodeId(1)));
    }

    #[test]
    fn alg1_prefers_larger_pred_set() {
        // 0 -> 1 -> 2 -> 4, 3 -> 4. pred(2) = {0,1} (size 2), pred(3) = {}
        // so 4's tree parent must be 2.
        let g = DiGraph::from_edges([(0, 1), (1, 2), (2, 4), (3, 4)]);
        let cover = cover_of(&g, CoverStrategy::Optimal).unwrap();
        assert_eq!(cover.parent(NodeId(4)), Some(NodeId(2)));
    }

    #[test]
    fn first_parent_and_random_are_valid_covers() {
        let g = diamond();
        for strat in [
            CoverStrategy::FirstParent,
            CoverStrategy::Random { seed: 3 },
            CoverStrategy::Deepest,
        ] {
            let cover = cover_of(&g, strat).unwrap();
            assert!(cover.check_consistency(&g), "{strat:?}");
            // Every non-root's tree arc is a real graph arc (checked by
            // check_consistency) and node 0 is the only root.
            assert_eq!(cover.roots().collect::<Vec<_>>(), vec![NodeId(0)]);
        }
    }

    #[test]
    fn deepest_builds_chains() {
        // 0 -> 1 -> 2, 0 -> 3, {2,3} -> 4: deepest picks 2 (depth 2) over 3.
        let g = DiGraph::from_edges([(0, 1), (1, 2), (0, 3), (2, 4), (3, 4)]);
        let cover = cover_of(&g, CoverStrategy::Deepest).unwrap();
        assert_eq!(cover.parent(NodeId(4)), Some(NodeId(2)));
    }

    #[test]
    fn subtree_and_ancestry() {
        let g = diamond();
        let cover = cover_of(&g, CoverStrategy::Optimal).unwrap();
        let mut sub = cover.subtree(NodeId(0));
        sub.sort_unstable();
        assert_eq!(sub, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert!(cover.is_tree_ancestor(NodeId(0), NodeId(3)));
        assert!(cover.is_tree_ancestor(NodeId(3), NodeId(3)), "reflexive");
        assert!(!cover.is_tree_ancestor(NodeId(2), NodeId(3)), "3 hangs under 1");
        assert_eq!(cover.depth(NodeId(3)), 2);
        assert!(cover.is_tree_arc(NodeId(0), NodeId(1)));
        assert!(!cover.is_tree_arc(NodeId(2), NodeId(3)));
    }

    #[test]
    fn detach_and_attach() {
        let g = diamond();
        let mut cover = cover_of(&g, CoverStrategy::Optimal).unwrap();
        assert_eq!(cover.detach(NodeId(3)), Some(NodeId(1)));
        assert_eq!(cover.parent(NodeId(3)), None);
        assert!(!cover.children(NodeId(1)).contains(&NodeId(3)));
        cover.attach(NodeId(2), NodeId(3));
        assert_eq!(cover.parent(NodeId(3)), Some(NodeId(2)));
        assert!(cover.check_consistency(&g));
    }

    #[test]
    fn enumerate_covers_counts_products() {
        let g = diamond();
        // Choices: node0:1, node1:1, node2:1, node3:2 -> 2 covers.
        let covers = enumerate_covers(&g, 100).unwrap();
        assert_eq!(covers.len(), 2);
        assert!(covers.iter().all(|c| c.check_consistency(&g)));
        // Limit respected.
        assert!(enumerate_covers(&g, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "not a graph arc")]
    fn from_parents_rejects_non_arcs() {
        let g = diamond();
        let _ = TreeCover::from_parents(&g, vec![None, Some(NodeId(2)), None, Some(NodeId(1))]);
    }

    #[test]
    fn check_consistency_catches_parent_cycles() {
        // Force a bogus cover with a parent cycle via direct construction.
        let g = DiGraph::from_edges([(0, 1), (1, 0)]); // not a DAG, but edges exist
        let cover = TreeCover {
            parent: vec![Some(NodeId(1)), Some(NodeId(0))],
            children: vec![vec![NodeId(1)], vec![NodeId(0)]],
        };
        assert!(!cover.check_consistency(&g));
    }
}
