//! The out-of-core frozen plane: a [`QueryPlane`]-equivalent snapshot that
//! lives in a page-aligned `PLN1` file section and answers queries through
//! `tc-store`'s buffer pool instead of RAM-resident arrays.
//!
//! [`crate::CompressedClosure::freeze`] builds an in-memory [`QueryPlane`];
//! for closures whose frozen arrays dwarf memory, the same snapshot can be
//! *streamed* to disk instead and probed page by page:
//!
//! * **Streaming freeze** — [`write_plane_section`] walks the labeling
//!   twice (a counting pass to size the segment directory, then sequential
//!   segment writes) and never materializes the row headers or boundary
//!   spill; peak RSS is the number line plus the stabbing triples, well
//!   below a full [`QueryPlane`].
//! * **`PLN1` section** — eight page-aligned segments (row heads, boundary
//!   spill, rank array, line array, the stabbing index's `los`/`his`/
//!   `owners`/segment tree), a fixed-size header with the segment
//!   directory and an FNV-1a digest of the payload, and a 12-byte footer
//!   locating the header from the end of the file. The section rides
//!   behind an `ITC1` stream ([`CompressedClosure::save_paged`]) or stands
//!   alone (freeze-to-temp).
//! * **[`PagedPlane`]** — opens a section in O(directory) time (only the
//!   footer and header are read — *instant restart*, independent of the
//!   interval count) and serves `reaches`/`reaches_batch`/`successors`/
//!   `predecessors` by pulling pages through an LRU [`BufferPool`]. The
//!   row byte layout is `tc_interval::paged` — identical geometry to the
//!   in-memory boundary arrays — so every answer is bit-identical to the
//!   [`QueryPlane`]'s.
//! * **[`PagedClosure`]** — the instant-restart handle: queries straight
//!   from the section, with [`PagedClosure::thaw`] decoding the `ITC1`
//!   stream on demand when the caller needs to write.
//!
//! Every query has a fallible `try_*` form whose reads are bounds-checked
//! against the directory — a corrupt or truncated section reports
//! [`PagedError::Corrupt`] instead of panicking or over-allocating, which
//! is what the `PLN1` byte-mutation fuzz campaign in `tc-fuzz` leans on.
//!
//! [`QueryPlane`]: crate::QueryPlane

use std::fmt;
use std::fs::{self, File};
use std::io::{self, Seek, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use tc_graph::topo::CutoffLabels;
use tc_graph::{DiGraph, NodeId};
use tc_interval::paged::{
    count_le, decode_head, encode_boundaries, encode_head, padded_boundary_keys, probe_head,
    HeadProbe, KeyWidth,
};
use tc_interval::{BitRows, BitRowsBuilder};
use tc_pager::{BufferPool, PageId, PagePin, Pager, PoolStats, DEFAULT_PAGE_SIZE};

use crate::codec::{fnv1a, DecodeError, HashingWriter};
use crate::labeling::Labeling;
use crate::plane::merged_row_into;
use crate::CompressedClosure;

/// Magic of the plane section ("PLN1").
const PLANE_MAGIC: [u8; 4] = *b"PLN1";
/// Magic of the optional hybrid-oracle overlay appended *after* the plane
/// footer ("HYB1"). Old files simply end with the `PLN1` footer and keep
/// opening unchanged.
const HYBRID_MAGIC: [u8; 4] = *b"HYB1";
/// Fixed hybrid trailer at the very end of an overlay-bearing file:
/// `[magic][n][live][threshold][word count][payload fnv][plane end][fnv]`.
const HYBRID_TRAILER_BYTES: usize = 60;
/// Bytes of the hybrid trailer covered by its digest.
const HYBRID_HASHED: usize = 52;
/// Fixed header size: fields, segment directory, header digest.
const HEADER_BYTES: usize = 224;
/// Trailing footer: `[header locator: section_start u64][magic]`.
const FOOTER_BYTES: usize = 12;
/// Bytes of the header covered by the header digest.
const HEADER_HASHED: usize = 216;

/// Segment indices in the directory (fixed order, ascending offsets).
const SEG_HEADS: usize = 0;
const SEG_SPILL: usize = 1;
const SEG_RANK: usize = 2;
const SEG_LINE: usize = 3;
const SEG_STAB_LOS: usize = 4;
const SEG_STAB_HIS: usize = 5;
const SEG_STAB_OWNERS: usize = 6;
const SEG_STAB_TREE: usize = 7;
const SEG_COUNT: usize = 8;

/// Default buffer-pool capacity (pages) for paged planes opened without an
/// explicit size: 256 × 4 KiB = 1 MiB of cache.
pub const DEFAULT_POOL_PAGES: usize = 256;

/// Failure opening or probing a paged plane.
#[derive(Debug)]
pub enum PagedError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The `PLN1` section is missing, structurally invalid, or a probe hit
    /// bytes inconsistent with the directory.
    Corrupt(&'static str),
    /// Thawing failed: the `ITC1` stream ahead of the plane section did
    /// not decode.
    Decode(DecodeError),
}

impl fmt::Display for PagedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PagedError::Io(e) => write!(f, "paged plane I/O: {e}"),
            PagedError::Corrupt(what) => write!(f, "paged plane corrupt: {what}"),
            PagedError::Decode(e) => write!(f, "paged plane thaw: {e}"),
        }
    }
}

impl std::error::Error for PagedError {}

impl From<io::Error> for PagedError {
    fn from(e: io::Error) -> Self {
        PagedError::Io(e)
    }
}

impl From<DecodeError> for PagedError {
    fn from(e: DecodeError) -> Self {
        PagedError::Decode(e)
    }
}

const fn corrupt<T>(what: &'static str) -> Result<T, PagedError> {
    Err(PagedError::Corrupt(what))
}

/// One directory entry: a byte range within the payload.
#[derive(Debug, Clone, Copy, Default)]
struct Segment {
    off: u64,
    len: u64,
}

/// The parsed, validated plane header.
#[derive(Debug, Clone)]
struct PlaneMeta {
    kw: KeyWidth,
    page_size: usize,
    nodes: usize,
    live: usize,
    /// Total *merged* rank intervals (the stabbing index length).
    intervals: usize,
    /// Labeling interval count at freeze time, before rank merging.
    source_intervals: usize,
    /// Stabbing-tree leaf count (power of two, 0 when `intervals == 0`).
    leaves: usize,
    /// Where the section begins in the file (the `ITC1` stream's length).
    section_start: u64,
    /// Absolute file offset of the payload pages.
    payload_off: u64,
    payload_len: u64,
    payload_fnv: u64,
    segs: [Segment; SEG_COUNT],
}

fn rd_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

fn rd_u64(b: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&b[at..at + 8]);
    u64::from_le_bytes(buf)
}

fn align_up(x: u64, a: u64) -> Option<u64> {
    let rem = x % a;
    if rem == 0 {
        Some(x)
    } else {
        x.checked_add(a - rem)
    }
}

impl PlaneMeta {
    /// Parses and validates a header against the file length. `footer` is
    /// the trailing [`FOOTER_BYTES`]; `header` the [`HEADER_BYTES`] before
    /// them.
    fn parse(file_len: u64, header: &[u8], footer: &[u8]) -> Result<PlaneMeta, PagedError> {
        if footer.len() != FOOTER_BYTES || header.len() != HEADER_BYTES {
            return corrupt("short header read");
        }
        if footer[8..12] != PLANE_MAGIC {
            return corrupt("no plane section (footer magic)");
        }
        if header[0..4] != PLANE_MAGIC {
            return corrupt("header magic");
        }
        if fnv1a(&header[..HEADER_HASHED]) != rd_u64(header, HEADER_HASHED) {
            return corrupt("header digest mismatch");
        }
        let section_start = rd_u64(footer, 0);
        let kw = match header[4] {
            2 => KeyWidth::Narrow,
            4 => KeyWidth::Wide,
            _ => return corrupt("key width"),
        };
        let page_size = rd_u32(header, 8) as usize;
        if page_size < 128 || page_size % 128 != 0 || page_size > (1 << 24) {
            return corrupt("page size");
        }
        let as_count = |v: u64, what: &'static str| -> Result<usize, PagedError> {
            if v > u32::MAX as u64 {
                Err(PagedError::Corrupt(what))
            } else {
                Ok(v as usize)
            }
        };
        let nodes = as_count(rd_u64(header, 16), "node count")?;
        let live = as_count(rd_u64(header, 24), "live count")?;
        let intervals = as_count(rd_u64(header, 32), "interval count")?;
        let source_intervals = as_count(rd_u64(header, 40), "source interval count")?;
        let leaves = as_count(rd_u64(header, 48), "leaf count")?;
        let spill_keys = rd_u64(header, 56);
        let payload_off = rd_u64(header, 64);
        let payload_len = rd_u64(header, 72);
        let payload_fnv = rd_u64(header, 80);
        let mut segs = [Segment::default(); SEG_COUNT];
        for (i, seg) in segs.iter_mut().enumerate() {
            seg.off = rd_u64(header, 88 + 16 * i);
            seg.len = rd_u64(header, 88 + 16 * i + 8);
        }
        let meta = PlaneMeta {
            kw,
            page_size,
            nodes,
            live,
            intervals,
            source_intervals,
            leaves,
            section_start,
            payload_off,
            payload_len,
            payload_fnv,
            segs,
        };
        // Ranks must fit the key width (mirrors the freeze gate), and the
        // tree leaf count must be what the stab descent assumes.
        if live as u64 > kw.max_key() as u64 {
            return corrupt("live count exceeds key width");
        }
        if intervals == 0 {
            if leaves != 0 {
                return corrupt("leaf count for empty index");
            }
        } else if leaves != intervals.next_power_of_two() {
            return corrupt("leaf count");
        }
        // The payload must sit between the section start and the header,
        // in whole pages, with a page count a PageId can address.
        let header_pos = file_len
            .checked_sub((HEADER_BYTES + FOOTER_BYTES) as u64)
            .ok_or(PagedError::Corrupt("file shorter than header"))?;
        if payload_len % page_size as u64 != 0 {
            return corrupt("payload not whole pages");
        }
        if payload_len / page_size as u64 > u32::MAX as u64 {
            return corrupt("payload page count");
        }
        let payload_end =
            payload_off.checked_add(payload_len).ok_or(PagedError::Corrupt("payload range"))?;
        if section_start > payload_off || payload_end > header_pos {
            return corrupt("payload outside section");
        }
        // Directory: fixed order, page-aligned, non-overlapping, inside the
        // payload, with the lengths the counts dictate.
        let (n, lv, m) = (nodes as u64, live as u64, intervals as u64);
        let expect: [u64; SEG_COUNT] = [
            n * kw.head_bytes() as u64,
            spill_keys
                .checked_mul(kw.key_bytes() as u64)
                .ok_or(PagedError::Corrupt("spill length"))?,
            n * 4,
            lv * 4,
            m * 4,
            m * 4,
            m * 4,
            if m == 0 { 0 } else { 2 * leaves as u64 * 4 },
        ];
        let mut prev_end = 0u64;
        for (i, &want) in expect.iter().enumerate() {
            let seg = meta.segs[i];
            if seg.len != want {
                return corrupt("segment length");
            }
            if seg.off % page_size as u64 != 0 || seg.off < prev_end {
                return corrupt("segment offset");
            }
            prev_end =
                seg.off.checked_add(seg.len).ok_or(PagedError::Corrupt("segment range"))?;
            if prev_end > payload_len {
                return corrupt("segment past payload");
            }
        }
        Ok(meta)
    }

    fn payload_pages(&self) -> u64 {
        self.payload_len / self.page_size as u64
    }
}

// ---------------------------------------------------------------------------
// Streaming writer
// ---------------------------------------------------------------------------

/// Streams the labeling's frozen snapshot to `out` as a `PLN1` section,
/// starting at the current stream position. Two passes over the label sets
/// (count, then write); row headers and boundary spill are re-derived per
/// pass and never held in memory, so peak RSS is the number line plus the
/// stabbing triples.
pub(crate) fn write_plane_section<W: Write + Seek>(
    lab: &Labeling,
    out: &mut W,
    page_size: usize,
) -> io::Result<()> {
    assert!(
        page_size >= 128 && page_size % 128 == 0,
        "plane page size must be a multiple of 128"
    );
    let too_big = || io::Error::new(io::ErrorKind::InvalidData, "plane exceeds PLN1 extents");
    let section_start = out.stream_position()?;
    let n = lab.post.len();
    let live = lab.line.live_count();
    if n > u32::MAX as usize || live > u32::MAX as usize {
        return Err(too_big());
    }
    let mut line_nums: Vec<u64> = Vec::with_capacity(live);
    let mut line_nodes: Vec<u32> = Vec::with_capacity(live);
    for (num, node) in lab.line.live_in_range(0, u64::MAX) {
        line_nums.push(num);
        line_nodes.push(node);
    }
    let mut rank = vec![0u32; n];
    for (r, &node) in line_nodes.iter().enumerate() {
        rank[node as usize] = r as u32;
    }
    let kw = if live <= u16::MAX as usize { KeyWidth::Narrow } else { KeyWidth::Wide };

    // Counting pass: per-row merged interval counts size every segment and
    // collect the stabbing triples (the only per-interval state kept).
    let mut row: Vec<(u32, u32)> = Vec::new();
    let mut stab: Vec<(u32, u32, u32)> = Vec::new();
    let mut source_intervals = 0u64;
    let mut spill_keys = 0u64;
    for (owner, set) in lab.sets.iter().enumerate() {
        source_intervals += set.count() as u64;
        merged_row_into(&line_nums, set, &mut row);
        for &(lo, hi) in &row {
            stab.push((lo, hi, owner as u32));
        }
        spill_keys += padded_boundary_keys(row.len(), kw) as u64;
    }
    stab.sort_unstable();
    let m = stab.len();
    if m > u32::MAX as usize || spill_keys > u32::MAX as u64 {
        return Err(too_big());
    }
    let leaves = if m == 0 { 0 } else { m.next_power_of_two() };

    // Directory: fixed segment order at page-aligned payload offsets.
    let lens: [u64; SEG_COUNT] = [
        n as u64 * kw.head_bytes() as u64,
        spill_keys * kw.key_bytes() as u64,
        n as u64 * 4,
        live as u64 * 4,
        m as u64 * 4,
        m as u64 * 4,
        m as u64 * 4,
        if m == 0 { 0 } else { 2 * leaves as u64 * 4 },
    ];
    let ps = page_size as u64;
    let mut segs = [Segment::default(); SEG_COUNT];
    let mut pos = 0u64;
    for (seg, &len) in segs.iter_mut().zip(&lens) {
        let off = align_up(pos, ps).ok_or_else(too_big)?;
        *seg = Segment { off, len };
        pos = off.checked_add(len).ok_or_else(too_big)?;
    }
    let payload_len = align_up(pos, ps).ok_or_else(too_big)?;
    let payload_off = align_up(section_start, ps).ok_or_else(too_big)?;

    // Pad to the first payload page, then stream every payload byte —
    // segment bytes and alignment padding alike — through the digest.
    write_zeros(out, payload_off - section_start)?;
    let mut w = HashingWriter::new(&mut *out);
    let mut cursor = 0u64;
    let mut head_buf = vec![0u8; kw.head_bytes()];
    let mut bound_buf: Vec<u8> = Vec::new();

    // HEADS: re-derive each row, encode its fixed-size header.
    pad_to(&mut w, &mut cursor, segs[SEG_HEADS].off)?;
    let mut next_spill = 0u64;
    for set in lab.sets.iter() {
        merged_row_into(&line_nums, set, &mut row);
        encode_head(&mut head_buf, kw, &row, next_spill as u32);
        next_spill += padded_boundary_keys(row.len(), kw) as u64;
        w.write_all(&head_buf)?;
        cursor += head_buf.len() as u64;
    }
    // SPILL: re-derive again, encode each row's padded boundary keys.
    pad_to(&mut w, &mut cursor, segs[SEG_SPILL].off)?;
    for set in lab.sets.iter() {
        merged_row_into(&line_nums, set, &mut row);
        bound_buf.clear();
        encode_boundaries(&mut bound_buf, kw, &row);
        w.write_all(&bound_buf)?;
        cursor += bound_buf.len() as u64;
    }
    pad_to(&mut w, &mut cursor, segs[SEG_RANK].off)?;
    write_u32s(&mut w, &mut cursor, rank.iter().copied())?;
    pad_to(&mut w, &mut cursor, segs[SEG_LINE].off)?;
    write_u32s(&mut w, &mut cursor, line_nodes.iter().copied())?;
    pad_to(&mut w, &mut cursor, segs[SEG_STAB_LOS].off)?;
    write_u32s(&mut w, &mut cursor, stab.iter().map(|t| t.0))?;
    pad_to(&mut w, &mut cursor, segs[SEG_STAB_HIS].off)?;
    write_u32s(&mut w, &mut cursor, stab.iter().map(|t| t.1))?;
    pad_to(&mut w, &mut cursor, segs[SEG_STAB_OWNERS].off)?;
    write_u32s(&mut w, &mut cursor, stab.iter().map(|t| t.2))?;
    if m > 0 {
        // Stabbing segment tree, identical to StabbingIndex::rebuild:
        // leaves hold hi + 1 (padding stays 0), internals the child max.
        let mut tree = vec![0u32; 2 * leaves];
        for (i, t) in stab.iter().enumerate() {
            tree[leaves + i] = t.1 + 1;
        }
        for i in (1..leaves).rev() {
            tree[i] = tree[2 * i].max(tree[2 * i + 1]);
        }
        pad_to(&mut w, &mut cursor, segs[SEG_STAB_TREE].off)?;
        write_u32s(&mut w, &mut cursor, tree.iter().copied())?;
    }
    pad_to(&mut w, &mut cursor, payload_len)?;
    debug_assert_eq!(w.written(), payload_len);
    let payload_fnv = w.digest();

    // Header + footer close the section; the header digest covers
    // everything above it.
    let mut h = [0u8; HEADER_BYTES];
    h[0..4].copy_from_slice(&PLANE_MAGIC);
    h[4] = kw.key_bytes() as u8;
    h[8..12].copy_from_slice(&(page_size as u32).to_le_bytes());
    h[16..24].copy_from_slice(&(n as u64).to_le_bytes());
    h[24..32].copy_from_slice(&(live as u64).to_le_bytes());
    h[32..40].copy_from_slice(&(m as u64).to_le_bytes());
    h[40..48].copy_from_slice(&source_intervals.to_le_bytes());
    h[48..56].copy_from_slice(&(leaves as u64).to_le_bytes());
    h[56..64].copy_from_slice(&spill_keys.to_le_bytes());
    h[64..72].copy_from_slice(&payload_off.to_le_bytes());
    h[72..80].copy_from_slice(&payload_len.to_le_bytes());
    h[80..88].copy_from_slice(&payload_fnv.to_le_bytes());
    for (i, seg) in segs.iter().enumerate() {
        h[88 + 16 * i..96 + 16 * i].copy_from_slice(&seg.off.to_le_bytes());
        h[96 + 16 * i..104 + 16 * i].copy_from_slice(&seg.len.to_le_bytes());
    }
    let hfnv = fnv1a(&h[..HEADER_HASHED]);
    h[HEADER_HASHED..HEADER_BYTES].copy_from_slice(&hfnv.to_le_bytes());
    out.write_all(&h)?;
    out.write_all(&section_start.to_le_bytes())?;
    out.write_all(&PLANE_MAGIC)?;
    Ok(())
}

fn write_zeros<W: Write>(out: &mut W, count: u64) -> io::Result<()> {
    let zeros = [0u8; 512];
    let mut left = count;
    while left > 0 {
        let take = left.min(zeros.len() as u64) as usize;
        out.write_all(&zeros[..take])?;
        left -= take as u64;
    }
    Ok(())
}

fn pad_to<W: Write>(w: &mut W, cursor: &mut u64, target: u64) -> io::Result<()> {
    debug_assert!(*cursor <= target, "writer overran segment plan");
    write_zeros(w, target - *cursor)?;
    *cursor = target;
    Ok(())
}

fn write_u32s<W: Write>(
    w: &mut W,
    cursor: &mut u64,
    items: impl Iterator<Item = u32>,
) -> io::Result<()> {
    // Chunk through a small staging buffer so the hashing writer sees a
    // few large writes per segment instead of one per element.
    let mut buf = Vec::with_capacity(4096);
    for v in items {
        buf.extend_from_slice(&v.to_le_bytes());
        if buf.len() >= 4096 {
            w.write_all(&buf)?;
            *cursor += buf.len() as u64;
            buf.clear();
        }
    }
    w.write_all(&buf)?;
    *cursor += buf.len() as u64;
    Ok(())
}

// ---------------------------------------------------------------------------
// The hybrid overlay (HYB1)
// ---------------------------------------------------------------------------
//
// The hybrid oracle's two structures — negative-cutoff labels and the
// bitset rows — are consulted on (nearly) every probe, so paging them would
// defeat their purpose. They ride as a *resident overlay* appended after
// the `PLN1` footer: `mn[n] ++ post[n] ++ slots[n]` as `u32`s, then the
// words arena as `u64`s, closed by a fixed trailer that locates where the
// plain plane image ends. The `PLN1` section itself is unchanged (every
// node keeps its full interval row on disk), so files without the overlay
// still end with the plane footer and open exactly as before.

/// The hybrid structures held in memory alongside a [`PagedPlane`].
#[derive(Debug)]
struct ResidentHybrid {
    cutoff: CutoffLabels,
    bitrows: BitRows,
    threshold: u64,
}

/// A parsed, shape-validated hybrid trailer.
struct HybridTail {
    n: usize,
    live: usize,
    threshold: u64,
    words: usize,
    payload_fnv: u64,
    /// Where the `PLN1` file image ends — also the overlay payload start.
    plane_end: u64,
}

impl HybridTail {
    fn payload_len(&self) -> u64 {
        self.n as u64 * 12 + self.words as u64 * 8
    }

    /// Parses the trailing [`HYBRID_TRAILER_BYTES`] of a file. `Ok(None)`
    /// means "no overlay here" (fall through to a plain `PLN1` parse);
    /// a valid magic with a broken digest or shape is `Corrupt`.
    fn parse(file_len: u64, t: &[u8]) -> Result<Option<HybridTail>, PagedError> {
        if t.len() != HYBRID_TRAILER_BYTES || t[0..4] != HYBRID_MAGIC {
            return Ok(None);
        }
        if fnv1a(&t[..HYBRID_HASHED]) != rd_u64(t, HYBRID_HASHED) {
            return corrupt("hybrid trailer digest mismatch");
        }
        let as_count = |v: u64, what: &'static str| -> Result<usize, PagedError> {
            if v > u32::MAX as u64 {
                Err(PagedError::Corrupt(what))
            } else {
                Ok(v as usize)
            }
        };
        let tail = HybridTail {
            n: as_count(rd_u64(t, 4), "hybrid node count")?,
            live: as_count(rd_u64(t, 12), "hybrid live count")?,
            threshold: rd_u64(t, 20),
            words: as_count(rd_u64(t, 28), "hybrid word count")?,
            payload_fnv: rd_u64(t, 36),
            plane_end: rd_u64(t, 44),
        };
        let end = tail
            .plane_end
            .checked_add(tail.payload_len())
            .and_then(|v| v.checked_add(HYBRID_TRAILER_BYTES as u64));
        if end != Some(file_len) {
            return corrupt("hybrid overlay extents");
        }
        Ok(Some(tail))
    }

    /// Reassembles the resident structures from the raw payload bytes.
    fn load(&self, payload: &[u8]) -> Result<ResidentHybrid, PagedError> {
        if payload.len() as u64 != self.payload_len() {
            return corrupt("hybrid payload length");
        }
        if fnv1a(payload) != self.payload_fnv {
            return corrupt("hybrid payload digest mismatch");
        }
        let n = self.n;
        let u32s = |at: usize| -> Vec<u32> {
            payload[at..at + 4 * n].chunks_exact(4).map(|c| rd_u32(c, 0)).collect()
        };
        let mn = u32s(0);
        let post = u32s(4 * n);
        let slots = u32s(8 * n);
        let words: Vec<u64> = payload[12 * n..].chunks_exact(8).map(|c| rd_u64(c, 0)).collect();
        let width = self.live.div_ceil(64);
        let bitrows =
            BitRows::from_parts(width, slots, words, 0).map_err(PagedError::Corrupt)?;
        Ok(ResidentHybrid {
            cutoff: CutoffLabels::from_parts(mn, post),
            bitrows,
            threshold: self.threshold,
        })
    }
}

/// If `data` ends with a valid hybrid trailer, the prefix holding the plain
/// `PLN1` file image; `data` unchanged otherwise. Purely structural.
fn strip_hybrid_tail(data: &[u8]) -> &[u8] {
    if data.len() < HYBRID_TRAILER_BYTES {
        return data;
    }
    let t = &data[data.len() - HYBRID_TRAILER_BYTES..];
    match HybridTail::parse(data.len() as u64, t) {
        Ok(Some(tail)) => &data[..tail.plane_end as usize],
        _ => data,
    }
}

/// Appends the hybrid overlay for `lab` (frozen against `graph` at
/// `threshold`) at the writer's current position — which must be the end of
/// the `PLN1` section — and closes it with the trailer.
pub(crate) fn write_hybrid_overlay<W: Write + Seek>(
    graph: &DiGraph,
    lab: &Labeling,
    threshold: usize,
    out: &mut W,
) -> io::Result<()> {
    let plane_end = out.stream_position()?;
    let n = lab.post.len();
    debug_assert_eq!(graph.node_count(), n, "hybrid overlay graph/labeling mismatch");
    let live = lab.line.live_count();
    let cutoff = CutoffLabels::build(graph);
    let line_nums: Vec<u64> = lab.line.live_in_range(0, u64::MAX).map(|(num, _)| num).collect();
    let mut bits = BitRowsBuilder::new(n, live);
    let mut row: Vec<(u32, u32)> = Vec::new();
    for (owner, set) in lab.sets.iter().enumerate() {
        merged_row_into(&line_nums, set, &mut row);
        if row.len() > threshold {
            bits.add_row(owner, &row);
        }
    }
    let rows = bits.finish();
    let mut w = HashingWriter::new(&mut *out);
    let mut cursor = 0u64;
    write_u32s(&mut w, &mut cursor, cutoff.mn().iter().copied())?;
    write_u32s(&mut w, &mut cursor, cutoff.post().iter().copied())?;
    write_u32s(&mut w, &mut cursor, rows.slots().iter().copied())?;
    let mut buf = Vec::with_capacity(4096);
    for &word in rows.words() {
        buf.extend_from_slice(&word.to_le_bytes());
        if buf.len() >= 4096 {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    w.write_all(&buf)?;
    let payload_fnv = w.digest();
    let mut t = [0u8; HYBRID_TRAILER_BYTES];
    t[0..4].copy_from_slice(&HYBRID_MAGIC);
    t[4..12].copy_from_slice(&(n as u64).to_le_bytes());
    t[12..20].copy_from_slice(&(live as u64).to_le_bytes());
    t[20..28].copy_from_slice(&(threshold as u64).to_le_bytes());
    t[28..36].copy_from_slice(&(rows.words().len() as u64).to_le_bytes());
    t[36..44].copy_from_slice(&payload_fnv.to_le_bytes());
    t[44..52].copy_from_slice(&plane_end.to_le_bytes());
    let tfnv = fnv1a(&t[..HYBRID_HASHED]);
    t[HYBRID_HASHED..].copy_from_slice(&tfnv.to_le_bytes());
    out.write_all(&t)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// The paged prober
// ---------------------------------------------------------------------------

/// The pager and its buffer pool, locked together: the pager's read
/// counters and the pool's LRU state both need exclusive access, and a
/// fetch must consult them atomically. Pins escape the lock — a [`PagePin`]
/// owns its bytes — so the critical section is one HashMap probe plus, on a
/// miss, one page read.
#[derive(Debug)]
struct PoolInner {
    pager: Pager,
    pool: BufferPool,
}

/// Aggregate I/O counters of a [`PagedPlane`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagedIoStats {
    /// Pages read from the backing file (pool misses).
    pub page_reads: u64,
    /// Buffer-pool hit/miss/eviction counters.
    pub pool: PoolStats,
    /// Pages currently cached.
    pub resident: usize,
}

/// A frozen query plane served out-of-core: the `PLN1` section stays on
/// disk and probes pull pages through an LRU buffer pool. Answers are
/// bit-identical to the in-memory [`crate::QueryPlane`] frozen from the
/// same labeling. Cheap to share: wrap in an [`Arc`] and query from any
/// thread (fetches serialize on an internal lock; decoded bytes are read
/// outside it).
#[derive(Debug)]
pub struct PagedPlane {
    meta: PlaneMeta,
    inner: Mutex<PoolInner>,
    /// Resident hybrid-oracle structures (negative-cutoff labels + bitset
    /// rows) when the file carries a `HYB1` overlay; `None` serves the
    /// plain interval plane.
    hybrid: Option<ResidentHybrid>,
    /// A temp file owned by this plane (freeze-to-temp), removed on drop.
    owned_path: Option<PathBuf>,
}

impl Drop for PagedPlane {
    fn drop(&mut self) {
        if let Some(path) = &self.owned_path {
            let _ = fs::remove_file(path);
        }
    }
}

impl PagedPlane {
    /// Opens the plane section of `path` — a file written by
    /// [`CompressedClosure::save_paged`] or a standalone section — reading
    /// only the footer and header: O(directory), independent of the
    /// interval count. `pool_pages` caps the buffer pool (min 1).
    pub fn open<P: AsRef<Path>>(path: P, pool_pages: usize) -> Result<PagedPlane, PagedError> {
        Self::open_impl(path.as_ref(), pool_pages, None)
    }

    fn open_impl(
        path: &Path,
        pool_pages: usize,
        owned_path: Option<PathBuf>,
    ) -> Result<PagedPlane, PagedError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        // A hybrid overlay, when present, sits between the plane footer and
        // the end of the file; load it resident and parse the `PLN1`
        // section as if the file ended where the overlay begins.
        let mut hybrid = None;
        let mut plane_len = file_len;
        if file_len >= HYBRID_TRAILER_BYTES as u64 {
            let mut tb = [0u8; HYBRID_TRAILER_BYTES];
            file.read_exact_at(&mut tb, file_len - HYBRID_TRAILER_BYTES as u64)?;
            if let Some(tail) = HybridTail::parse(file_len, &tb)? {
                let mut payload = vec![0u8; tail.payload_len() as usize];
                file.read_exact_at(&mut payload, tail.plane_end)?;
                hybrid = Some(tail.load(&payload)?);
                plane_len = tail.plane_end;
            }
        }
        let tail = (HEADER_BYTES + FOOTER_BYTES) as u64;
        if plane_len < tail {
            return corrupt("file shorter than header");
        }
        let mut buf = [0u8; HEADER_BYTES + FOOTER_BYTES];
        file.read_exact_at(&mut buf, plane_len - tail)?;
        let meta = PlaneMeta::parse(plane_len, &buf[..HEADER_BYTES], &buf[HEADER_BYTES..])?;
        Self::check_hybrid_shape(&meta, hybrid.as_ref())?;
        let pager = Pager::open_file_region(
            file,
            meta.payload_off,
            meta.payload_pages() as usize,
            meta.page_size,
        );
        let pool = BufferPool::new(pool_pages.max(1));
        Ok(PagedPlane { meta, inner: Mutex::new(PoolInner { pager, pool }), hybrid, owned_path })
    }

    /// The overlay's counts must match the plane it annotates.
    fn check_hybrid_shape(
        meta: &PlaneMeta,
        hybrid: Option<&ResidentHybrid>,
    ) -> Result<(), PagedError> {
        if let Some(h) = hybrid {
            if h.cutoff.len() != meta.nodes || h.bitrows.slots().len() != meta.nodes {
                return corrupt("hybrid overlay node count mismatch");
            }
            if h.bitrows.row_count() > 0 && h.bitrows.width_words() != meta.live.div_ceil(64) {
                return corrupt("hybrid overlay width mismatch");
            }
        }
        Ok(())
    }

    /// As [`PagedPlane::open`], but taking ownership of `path`: the file is
    /// removed when the plane drops. Used by freeze-to-temp.
    pub(crate) fn open_owning(path: PathBuf, pool_pages: usize) -> Result<PagedPlane, PagedError> {
        Self::open_impl(&path, pool_pages, Some(path.clone()))
    }

    /// Opens a plane from an in-memory image of a section-bearing file,
    /// backing it with a memory pager (no file I/O). This is the fuzz
    /// campaign's entry point: byte mutations hit the same parse and probe
    /// paths as a corrupt file would.
    pub fn open_from_bytes(data: &[u8], pool_pages: usize) -> Result<PagedPlane, PagedError> {
        let mut hybrid = None;
        let mut plane = data;
        if data.len() >= HYBRID_TRAILER_BYTES {
            let tb = &data[data.len() - HYBRID_TRAILER_BYTES..];
            if let Some(tail) = HybridTail::parse(data.len() as u64, tb)? {
                let payload = &data[tail.plane_end as usize
                    ..tail.plane_end as usize + tail.payload_len() as usize];
                hybrid = Some(tail.load(payload)?);
                plane = &data[..tail.plane_end as usize];
            }
        }
        let tail = HEADER_BYTES + FOOTER_BYTES;
        if plane.len() < tail {
            return corrupt("file shorter than header");
        }
        let header = &plane[plane.len() - tail..plane.len() - FOOTER_BYTES];
        let footer = &plane[plane.len() - FOOTER_BYTES..];
        let meta = PlaneMeta::parse(plane.len() as u64, header, footer)?;
        Self::check_hybrid_shape(&meta, hybrid.as_ref())?;
        let mut pager = Pager::with_page_size(meta.page_size);
        let payload =
            &plane[meta.payload_off as usize..(meta.payload_off + meta.payload_len) as usize];
        for chunk in payload.chunks(meta.page_size) {
            let id = pager.alloc();
            pager.write(id, chunk);
        }
        pager.reset_counters();
        let pool = BufferPool::new(pool_pages.max(1));
        Ok(PagedPlane {
            meta,
            inner: Mutex::new(PoolInner { pager, pool }),
            hybrid,
            owned_path: None,
        })
    }

    /// Number of nodes in the snapshot.
    pub fn node_count(&self) -> usize {
        self.meta.nodes
    }

    /// Live number-line entries at freeze time.
    pub fn live_count(&self) -> usize {
        self.meta.live
    }

    /// Total merged rank intervals in the snapshot.
    pub fn total_intervals(&self) -> usize {
        self.meta.intervals
    }

    /// The labeling's interval count at freeze time, before rank merging.
    pub fn source_intervals(&self) -> usize {
        self.meta.source_intervals
    }

    /// Page size of the section.
    pub fn page_size(&self) -> usize {
        self.meta.page_size
    }

    /// The hybrid threshold the overlay was written with, when the file
    /// carries one (`None` = plain interval plane).
    pub fn hybrid_threshold(&self) -> Option<u64> {
        self.hybrid.as_ref().map(|h| h.threshold)
    }

    /// Number of nodes served from resident bitset rows (0 without an
    /// overlay).
    pub fn bitset_rows(&self) -> usize {
        self.hybrid.as_ref().map_or(0, |h| h.bitrows.row_count())
    }

    /// Total payload pages on disk (the plane's out-of-core footprint).
    pub fn payload_pages(&self) -> u64 {
        self.meta.payload_pages()
    }

    /// Where the plane section begins in the file — equivalently, the byte
    /// length of the `ITC1` stream ahead of it (0 for a standalone plane).
    pub(crate) fn section_start(&self) -> u64 {
        self.meta.section_start
    }

    /// Cumulative I/O counters (pager reads, pool hits/misses/evictions).
    pub fn io_stats(&self) -> PagedIoStats {
        let g = self.lock();
        PagedIoStats {
            page_reads: g.pager.reads(),
            pool: g.pool.stats(),
            resident: g.pool.resident(),
        }
    }

    /// Resets the I/O counters *and empties the buffer pool* — the next
    /// probe starts cold. For warm-cache deltas, diff [`PagedPlane::io_stats`]
    /// snapshots instead.
    pub fn reset_io(&self) {
        let mut g = self.lock();
        g.pager.reset_counters();
        g.pool.clear();
    }

    fn lock(&self) -> MutexGuard<'_, PoolInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Fetches one payload page as a pin (bytes stay valid after unlock).
    fn pin(&self, page: u64) -> Result<PagePin, PagedError> {
        if page >= self.meta.payload_pages() {
            return corrupt("page index out of range");
        }
        let mut g = self.lock();
        let PoolInner { pager, pool } = &mut *g;
        Ok(pool.fetch_pin(pager, PageId(page as u32)))
    }

    /// Runs `f` over `len` bytes at `byte_off` within segment `seg`,
    /// bounds-checked against the directory. Single-page runs borrow the
    /// pinned frame; straddling runs are copied (only multi-key reads can
    /// straddle — heads and `u32` cells divide the page size).
    fn with_run<R>(
        &self,
        seg: usize,
        byte_off: u64,
        len: usize,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R, PagedError> {
        let s = self.meta.segs[seg];
        let end = byte_off.checked_add(len as u64).ok_or(PagedError::Corrupt("range overflow"))?;
        if end > s.len {
            return corrupt("read past segment end");
        }
        let ps = self.meta.page_size as u64;
        let abs = s.off + byte_off;
        let in_page = (abs % ps) as usize;
        if in_page + len <= self.meta.page_size {
            let pin = self.pin(abs / ps)?;
            return Ok(f(&pin[in_page..in_page + len]));
        }
        let mut buf = vec![0u8; len];
        let mut filled = 0usize;
        while filled < len {
            let at = abs + filled as u64;
            let in_page = (at % ps) as usize;
            let take = (self.meta.page_size - in_page).min(len - filled);
            let pin = self.pin(at / ps)?;
            buf[filled..filled + take].copy_from_slice(&pin[in_page..in_page + take]);
            filled += take;
        }
        Ok(f(&buf))
    }

    /// The `u32` at `index` of a 4-byte-element segment.
    fn u32_at(&self, seg: usize, index: u64) -> Result<u32, PagedError> {
        let off = index.checked_mul(4).ok_or(PagedError::Corrupt("index overflow"))?;
        self.with_run(seg, off, 4, |b| rd_u32(b, 0))
    }

    /// Node id bounds check shared by the public probes.
    fn check_node(&self, node: NodeId) -> Result<usize, PagedError> {
        if node.index() >= self.meta.nodes {
            return corrupt("node id out of range");
        }
        Ok(node.index())
    }

    /// The rank of `node`'s own postorder number — the probe key.
    fn rank_of(&self, node: NodeId) -> Result<u32, PagedError> {
        let idx = self.check_node(node)?;
        let r = self.u32_at(SEG_RANK, idx as u64)?;
        if r as u64 >= self.meta.live as u64 {
            return corrupt("rank out of range");
        }
        Ok(r)
    }

    /// Parity-counts spill keys `<= t` over `[key_start, key_start +
    /// key_count)`, page by page — `count_le` is associative, so no slice
    /// is ever materialized across a page boundary.
    fn spill_count_le(&self, key_start: u64, key_count: u64, t: u32) -> Result<usize, PagedError> {
        let kb = self.meta.kw.key_bytes() as u64;
        let start =
            key_start.checked_mul(kb).ok_or(PagedError::Corrupt("spill range overflow"))?;
        let len =
            key_count.checked_mul(kb).ok_or(PagedError::Corrupt("spill range overflow"))?;
        let end = start.checked_add(len).ok_or(PagedError::Corrupt("spill range overflow"))?;
        if end > self.meta.segs[SEG_SPILL].len {
            return corrupt("row slice past spill segment");
        }
        let ps = self.meta.page_size as u64;
        let seg_off = self.meta.segs[SEG_SPILL].off;
        let mut count = 0usize;
        let mut pos = start;
        while pos < end {
            let at = seg_off + pos;
            let in_page = (at % ps) as usize;
            let take = ((ps - in_page as u64).min(end - pos)) as usize;
            let pin = self.pin(at / ps)?;
            count += count_le(&pin[in_page..in_page + take], self.meta.kw, t);
            pos += take as u64;
        }
        Ok(count)
    }

    /// Whether row `row`'s interval set contains rank `t`: one header page,
    /// then at most one boundary slice (≤ 2 pages when it straddles).
    fn row_contains(&self, row: usize, t: u32) -> Result<bool, PagedError> {
        let kw = self.meta.kw;
        let hb = kw.head_bytes();
        let probe =
            self.with_run(SEG_HEADS, (row * hb) as u64, hb, |bytes| probe_head(bytes, kw, t))?;
        match probe {
            HeadProbe::Hit(ans) => Ok(ans),
            HeadProbe::Scan { key_start, key_count } => {
                Ok(self.spill_count_le(key_start, key_count as u64, t)? % 2 == 1)
            }
        }
    }

    /// Fallible [`PagedPlane::reaches`]: reports corruption instead of
    /// panicking.
    pub fn try_reaches(&self, src: NodeId, dst: NodeId) -> Result<bool, PagedError> {
        let row = self.check_node(src)?;
        if let Some(h) = &self.hybrid {
            self.check_node(dst)?;
            // The cutoff labels rule out most unreachable pairs without a
            // single page fetch; a resident bitset row answers the rest of
            // its node's probes with one word test.
            if !h.cutoff.may_reach(src, dst) {
                return Ok(false);
            }
            let t = self.rank_of(dst)?;
            if let Some(hit) = h.bitrows.contains(row, t) {
                return Ok(hit);
            }
            return self.row_contains(row, t);
        }
        let t = self.rank_of(dst)?;
        self.row_contains(row, t)
    }

    /// Whether `src` reaches `dst` (reflexive) — bit-identical to the
    /// in-memory plane's answer.
    ///
    /// # Panics
    ///
    /// Panics if the section is corrupt; use [`PagedPlane::try_reaches`]
    /// for untrusted files.
    pub fn reaches(&self, src: NodeId, dst: NodeId) -> bool {
        self.try_reaches(src, dst).expect("paged plane probe")
    }

    /// Answers a batch of reachability pairs in one call.
    pub fn reaches_batch(&self, pairs: &[(NodeId, NodeId)]) -> Vec<bool> {
        pairs.iter().map(|&(s, d)| self.reaches(s, d)).collect()
    }

    /// Reads row `row`'s merged rank intervals out of the header + spill
    /// segments, validating shape (ascending, disjoint, within the line).
    fn read_row_intervals(&self, row: usize, out: &mut Vec<(u32, u32)>) -> Result<(), PagedError> {
        out.clear();
        let kw = self.meta.kw;
        let hb = kw.head_bytes();
        let head = self.with_run(SEG_HEADS, (row * hb) as u64, hb, |b| decode_head(b, kw))?;
        let m = head.intervals as usize;
        if m == 0 {
            return Ok(());
        }
        if m > self.meta.intervals {
            return corrupt("row interval count exceeds total");
        }
        let kb = kw.key_bytes();
        let start = head.spill_start as u64;
        let bytes = 2 * m * kb;
        let byte_off = start.checked_mul(kb as u64).ok_or(PagedError::Corrupt("spill range"))?;
        out.reserve(m);
        self.with_run(SEG_SPILL, byte_off, bytes, |buf| {
            let mut prev_hi = 0u32;
            for j in 0..m {
                let lo = kw.key_at(buf, 2 * j);
                let hi1 = kw.key_at(buf, 2 * j + 1);
                if hi1 <= lo {
                    return corrupt("row interval inverted");
                }
                let hi = hi1 - 1;
                if hi as u64 >= self.meta.live as u64 {
                    return corrupt("row interval past line end");
                }
                if j > 0 && lo <= prev_hi {
                    return corrupt("row intervals not ascending");
                }
                prev_hi = hi;
                out.push((lo, hi));
            }
            Ok(())
        })?
    }

    /// Fallible [`PagedPlane::successors_into`].
    pub fn try_successors_into(
        &self,
        node: NodeId,
        out: &mut Vec<NodeId>,
    ) -> Result<(), PagedError> {
        let row = self.check_node(node)?;
        let mut intervals = Vec::new();
        let from_bits = self
            .hybrid
            .as_ref()
            .is_some_and(|h| h.bitrows.for_each_run(row, |lo, hi| intervals.push((lo, hi))));
        if !from_bits {
            self.read_row_intervals(row, &mut intervals)?;
        }
        out.clear();
        for (rlo, rhi) in intervals {
            self.read_line_run(rlo, rhi, out)?;
        }
        Ok(())
    }

    /// Appends the line nodes at ranks `[rlo, rhi]` to `out`, page by page.
    fn read_line_run(&self, rlo: u32, rhi: u32, out: &mut Vec<NodeId>) -> Result<(), PagedError> {
        let start = rlo as u64 * 4;
        let end = (rhi as u64 + 1) * 4;
        if end > self.meta.segs[SEG_LINE].len {
            return corrupt("rank run past line segment");
        }
        let ps = self.meta.page_size as u64;
        let seg_off = self.meta.segs[SEG_LINE].off;
        let mut pos = start;
        while pos < end {
            let at = seg_off + pos;
            let in_page = (at % ps) as usize;
            let take = ((ps - in_page as u64).min(end - pos)) as usize;
            let pin = self.pin(at / ps)?;
            let chunk = &pin[in_page..in_page + take];
            out.extend(chunk.chunks_exact(4).map(|c| NodeId(rd_u32(c, 0))));
            pos += take as u64;
        }
        Ok(())
    }

    /// All nodes reachable from `node` (including itself), ascending by
    /// postorder number — identical to the in-memory decode.
    pub fn successors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.try_successors_into(node, &mut out).expect("paged plane probe");
        out
    }

    /// [`PagedPlane::successors`] into a caller-provided buffer.
    pub fn successors_into(&self, node: NodeId, out: &mut Vec<NodeId>) {
        self.try_successors_into(node, out).expect("paged plane probe");
    }

    /// Fallible [`PagedPlane::successor_count`].
    pub fn try_successor_count(&self, node: NodeId) -> Result<usize, PagedError> {
        let row = self.check_node(node)?;
        if let Some(count) = self.hybrid.as_ref().and_then(|h| h.bitrows.count(row)) {
            return Ok(count);
        }
        let mut intervals = Vec::new();
        self.read_row_intervals(row, &mut intervals)?;
        Ok(intervals.iter().map(|&(lo, hi)| (hi - lo) as usize + 1).sum())
    }

    /// Count of nodes reachable from `node` without materializing the list.
    pub fn successor_count(&self, node: NodeId) -> usize {
        self.try_successor_count(node).expect("paged plane probe")
    }

    /// Fallible [`PagedPlane::predecessors_into`].
    pub fn try_predecessors_into(
        &self,
        node: NodeId,
        out: &mut Vec<NodeId>,
    ) -> Result<(), PagedError> {
        out.clear();
        let t = self.rank_of(node)?;
        let m = self.meta.intervals as u64;
        if m == 0 {
            return Ok(());
        }
        // Candidate prefix: positions with lo <= t (los is ascending).
        let mut lo = 0u64;
        let mut hi = m;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.u32_at(SEG_STAB_LOS, mid)? <= t {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let pos = lo as usize;
        if pos == 0 {
            return Ok(());
        }
        // Max-hi segment-tree descent, pruned exactly like the in-memory
        // StabbingIndex (tree entries are hi + 1; padding leaves are 0).
        let mut scratch: Vec<u32> = Vec::new();
        let mut stack: Vec<(u64, usize, usize)> = vec![(1, 0, self.meta.leaves)];
        while let Some((node_ix, range_lo, range_hi)) = stack.pop() {
            if range_lo >= pos || self.u32_at(SEG_STAB_TREE, node_ix)? <= t {
                continue;
            }
            if range_hi - range_lo == 1 {
                let owner = self.u32_at(SEG_STAB_OWNERS, range_lo as u64)?;
                if owner as usize >= self.meta.nodes {
                    return corrupt("stab owner out of range");
                }
                scratch.push(owner);
                continue;
            }
            let mid = range_lo + (range_hi - range_lo) / 2;
            if scratch.len() > self.meta.intervals {
                return corrupt("stab result exceeds interval count");
            }
            stack.push((2 * node_ix + 1, mid, range_hi));
            stack.push((2 * node_ix, range_lo, mid));
        }
        // A row's merged intervals are disjoint, so each owner appears at
        // most once — sorting alone restores id order.
        scratch.sort_unstable();
        out.extend(scratch.into_iter().map(NodeId));
        Ok(())
    }

    /// All nodes that reach `node` (including itself), ascending by node
    /// id — identical to the in-memory stab.
    pub fn predecessors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.try_predecessors_into(node, &mut out).expect("paged plane probe");
        out
    }

    /// [`PagedPlane::predecessors`] into a caller-provided buffer.
    pub fn predecessors_into(&self, node: NodeId, out: &mut Vec<NodeId>) {
        self.try_predecessors_into(node, out).expect("paged plane probe");
    }

    /// Streams every payload page through FNV-1a and compares against the
    /// digest stored at freeze time. O(payload) — [`PagedPlane::open`]
    /// deliberately skips this to keep restart O(directory); run it when
    /// ingesting files from untrusted storage.
    pub fn verify_payload(&self) -> Result<(), PagedError> {
        let mut fnv = crate::codec::Fnv1a::new();
        for page in 0..self.meta.payload_pages() {
            let pin = self.pin(page)?;
            fnv.update(&pin);
        }
        if fnv.finish() != self.meta.payload_fnv {
            return corrupt("payload digest mismatch");
        }
        Ok(())
    }

    /// Cross-checks the snapshot's counts against the labeling it should
    /// mirror — the paged analogue of the in-memory plane's audit hook.
    pub(crate) fn check_consistency(&self, lab: &Labeling) -> Result<(), String> {
        if self.meta.nodes != lab.post.len() {
            return Err(format!(
                "paged plane holds {} nodes for {} in the labeling",
                self.meta.nodes,
                lab.post.len()
            ));
        }
        if self.meta.live != lab.line.live_count() {
            return Err(format!(
                "paged plane line length {} != {} live numbers",
                self.meta.live,
                lab.line.live_count()
            ));
        }
        let total: usize = lab.sets.iter().map(|s| s.count()).sum();
        if self.meta.source_intervals != total {
            return Err(format!(
                "paged plane frozen from {} intervals but labeling now holds {total}",
                self.meta.source_intervals
            ));
        }
        if self.meta.intervals > total {
            return Err(format!(
                "paged plane holds {} merged intervals, more than the labeling's {total}",
                self.meta.intervals
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Freeze-to-temp and the closure-level API
// ---------------------------------------------------------------------------

/// Distinguishes temp plane files of concurrent freezes in one process.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Streams `lab`'s snapshot to a fresh temp file and opens it paged; the
/// file is removed when the returned plane drops. A finite `threshold`
/// appends the hybrid overlay, served resident by the opened plane.
pub(crate) fn freeze_paged(
    graph: &DiGraph,
    lab: &Labeling,
    threshold: usize,
    pool_pages: usize,
) -> Result<PagedPlane, PagedError> {
    let path = std::env::temp_dir().join(format!(
        "tc-plane-{}-{}.pln",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let write = || -> io::Result<()> {
        let mut w = io::BufWriter::new(File::create(&path)?);
        write_plane_section(lab, &mut w, DEFAULT_PAGE_SIZE)?;
        if threshold != usize::MAX {
            write_hybrid_overlay(graph, lab, threshold, &mut w)?;
        }
        w.flush()
    };
    if let Err(e) = write() {
        let _ = fs::remove_file(&path);
        return Err(PagedError::Io(e));
    }
    PagedPlane::open_owning(path, pool_pages)
}

/// An instant-restart handle over a [`CompressedClosure::save_paged`] file:
/// opened in O(directory) time, read queries served straight from the
/// on-disk plane section, and the full mutable closure decoded only when
/// [`PagedClosure::thaw`] asks for it.
#[derive(Debug)]
pub struct PagedClosure {
    plane: Arc<PagedPlane>,
    path: PathBuf,
}

impl PagedClosure {
    /// Opens `path` (written by [`CompressedClosure::save_paged`]) without
    /// decoding the `ITC1` stream: startup reads only the plane footer,
    /// header, and directory.
    pub fn open<P: AsRef<Path>>(path: P, pool_pages: usize) -> Result<PagedClosure, PagedError> {
        let plane = PagedPlane::open(path.as_ref(), pool_pages)?;
        Ok(PagedClosure { plane: Arc::new(plane), path: path.as_ref().to_path_buf() })
    }

    /// The underlying paged plane (shareable across threads).
    pub fn plane(&self) -> &Arc<PagedPlane> {
        &self.plane
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.plane.node_count()
    }

    /// Whether `src` reaches `dst` (reflexive).
    pub fn reaches(&self, src: NodeId, dst: NodeId) -> bool {
        self.plane.reaches(src, dst)
    }

    /// Answers a batch of reachability pairs.
    pub fn reaches_batch(&self, pairs: &[(NodeId, NodeId)]) -> Vec<bool> {
        self.plane.reaches_batch(pairs)
    }

    /// All nodes reachable from `node` (including itself).
    pub fn successors(&self, node: NodeId) -> Vec<NodeId> {
        self.plane.successors(node)
    }

    /// Count of nodes reachable from `node`.
    pub fn successor_count(&self, node: NodeId) -> usize {
        self.plane.successor_count(node)
    }

    /// All nodes that reach `node` (including itself).
    pub fn predecessors(&self, node: NodeId) -> Vec<NodeId> {
        self.plane.predecessors(node)
    }

    /// Decodes the `ITC1` stream ahead of the plane section into a full
    /// mutable [`CompressedClosure`] — the deferred half of instant
    /// restart, paid only when the caller needs to write. The paged plane
    /// stays attached and keeps serving reads until the first update
    /// invalidates it.
    pub fn thaw(&self) -> Result<CompressedClosure, PagedError> {
        let data = fs::read(&self.path)?;
        let cut = self.plane.section_start() as usize;
        if cut > data.len() {
            return corrupt("section start past end of file");
        }
        let mut closure = CompressedClosure::from_bytes(&data[..cut])?;
        closure.paged = Some(Arc::clone(&self.plane));
        Ok(closure)
    }
}

impl CompressedClosure {
    /// Serializes the closure as an `ITC1` stream followed by a `PLN1`
    /// plane section, streaming both (the plane section is written
    /// level-by-level from the labeling, never materialized in memory).
    /// The result can be reopened instantly with
    /// [`CompressedClosure::open_paged`] or loaded fully with
    /// [`CompressedClosure::load`].
    pub fn save_paged<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut w = io::BufWriter::new(File::create(path)?);
        self.write_to(&mut w)?;
        write_plane_section(&self.lab, &mut w, DEFAULT_PAGE_SIZE)?;
        if self.config.hybrid_threshold != usize::MAX {
            write_hybrid_overlay(&self.graph, &self.lab, self.config.hybrid_threshold, &mut w)?;
        }
        w.flush()
    }

    /// [`CompressedClosure::save_paged`] into memory — the fuzz campaign's
    /// corpus seed.
    pub fn to_paged_bytes(&self) -> Vec<u8> {
        let mut cur = io::Cursor::new(self.to_bytes());
        cur.seek(io::SeekFrom::End(0)).expect("in-memory seek");
        write_plane_section(&self.lab, &mut cur, DEFAULT_PAGE_SIZE)
            .expect("in-memory plane write");
        if self.config.hybrid_threshold != usize::MAX {
            write_hybrid_overlay(&self.graph, &self.lab, self.config.hybrid_threshold, &mut cur)
                .expect("in-memory overlay write");
        }
        cur.into_inner()
    }

    /// Opens a [`CompressedClosure::save_paged`] file as an instant-restart
    /// [`PagedClosure`]: O(directory) startup, reads served from the paged
    /// plane, the mutable closure decoded lazily by [`PagedClosure::thaw`].
    pub fn open_paged<P: AsRef<Path>>(
        path: P,
        pool_pages: usize,
    ) -> Result<PagedClosure, PagedError> {
        PagedClosure::open(path, pool_pages)
    }

    /// Loads a closure from a file written by either
    /// `std::fs::write(path, closure.to_bytes())` or
    /// [`CompressedClosure::save_paged`] — a trailing plane section, when
    /// present, is skipped.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<CompressedClosure, PagedError> {
        let data = fs::read(path)?;
        Self::from_bytes_auto(&data)
    }

    /// [`CompressedClosure::load`] for a buffer already in memory (e.g. a
    /// stream read from stdin): decodes a bare `ITC1` stream or a
    /// [`CompressedClosure::save_paged`] image, skipping the trailing
    /// plane section in the latter case.
    pub fn from_bytes_auto(data: &[u8]) -> Result<CompressedClosure, PagedError> {
        let stream = match plane_section_start(data) {
            Some(cut) => &data[..cut],
            None => data,
        };
        Ok(CompressedClosure::from_bytes(stream)?)
    }
}

/// If `data` ends with a plane footer (optionally followed by a hybrid
/// overlay), the byte offset where the section begins (i.e. the `ITC1`
/// stream length). Purely structural — corrupt sections are caught later by
/// the header digest.
fn plane_section_start(data: &[u8]) -> Option<usize> {
    let data = strip_hybrid_tail(data);
    if data.len() < HEADER_BYTES + FOOTER_BYTES {
        return None;
    }
    let footer = &data[data.len() - FOOTER_BYTES..];
    if footer[8..12] != PLANE_MAGIC {
        return None;
    }
    let start = rd_u64(footer, 0);
    (start <= data.len() as u64).then_some(start as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClosureConfig;
    use tc_graph::generators;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "tc-paged-test-{}-{}-{tag}.itc",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample_closure() -> CompressedClosure {
        let g = generators::random_dag(generators::RandomDagConfig {
            nodes: 120,
            avg_out_degree: 2.5,
            seed: 31,
        });
        ClosureConfig::new().reserve(2).build(&g).unwrap()
    }

    fn assert_plane_matches(c: &CompressedClosure, paged: &PagedPlane) {
        let mut mem = c.clone();
        mem.freeze();
        let plane = mem.plane().expect("frozen");
        assert_eq!(paged.node_count(), plane.node_count());
        assert_eq!(paged.total_intervals(), plane.total_intervals());
        for v in (0..c.node_count()).map(NodeId::from_index) {
            assert_eq!(paged.successors(v), plane.successors(v), "successors({v:?})");
            assert_eq!(paged.predecessors(v), plane.predecessors(v), "predecessors({v:?})");
            assert_eq!(paged.successor_count(v), plane.successor_count(v));
            for w in (0..c.node_count()).step_by(7).map(NodeId::from_index) {
                assert_eq!(paged.reaches(v, w), plane.reaches(v, w), "reaches({v:?},{w:?})");
            }
        }
    }

    #[test]
    fn save_open_round_trip_matches_memory_plane() {
        let c = sample_closure();
        let path = temp_path("roundtrip");
        c.save_paged(&path).unwrap();
        let paged = PagedPlane::open(&path, 64).unwrap();
        paged.verify_payload().unwrap();
        assert_plane_matches(&c, &paged);
        drop(paged);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tiny_pool_still_answers_identically() {
        // Pool of one page ≪ plane: every probe evicts, answers unchanged.
        let c = sample_closure();
        let bytes = c.to_paged_bytes();
        let paged = PagedPlane::open_from_bytes(&bytes, 1).unwrap();
        assert!(paged.payload_pages() > 1, "plane must outsize the pool");
        assert_plane_matches(&c, &paged);
        let stats = paged.io_stats();
        assert!(stats.pool.evictions > 0, "one-frame pool must evict");
    }

    #[test]
    fn open_reads_only_the_directory() {
        let c = sample_closure();
        let path = temp_path("instant");
        c.save_paged(&path).unwrap();
        let paged = PagedPlane::open(&path, 64).unwrap();
        // Opening touched no payload pages at all; the first probe does.
        assert_eq!(paged.io_stats().page_reads, 0);
        assert!(paged.reaches(NodeId(0), NodeId(0)));
        assert!(paged.io_stats().page_reads > 0);
        drop(paged);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reaches_costs_a_bounded_page_count() {
        let c = sample_closure();
        let bytes = c.to_paged_bytes();
        let paged = PagedPlane::open_from_bytes(&bytes, 1).unwrap();
        // With a one-frame pool every touched page is a read: a point probe
        // is rank + head + at most one straddling slice = ≤ 4 pages.
        for v in (0..c.node_count()).step_by(11).map(NodeId::from_index) {
            for w in (0..c.node_count()).step_by(13).map(NodeId::from_index) {
                let before = paged.io_stats().page_reads;
                let _ = paged.reaches(v, w);
                assert!(paged.io_stats().page_reads - before <= 4);
            }
        }
    }

    #[test]
    fn paged_closure_thaws_to_equal_closure() {
        let c = sample_closure();
        let path = temp_path("thaw");
        c.save_paged(&path).unwrap();
        let handle = CompressedClosure::open_paged(&path, 32).unwrap();
        assert_eq!(handle.node_count(), c.node_count());
        assert_eq!(handle.successors(NodeId(3)), c.successors(NodeId(3)));
        let thawed = handle.thaw().unwrap();
        assert!(thawed.is_frozen(), "thaw keeps the paged plane attached");
        assert_eq!(thawed.to_bytes(), c.to_bytes(), "thawed stream is bit-identical");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_strips_the_plane_section() {
        let c = sample_closure();
        let path = temp_path("load");
        c.save_paged(&path).unwrap();
        let loaded = CompressedClosure::load(&path).unwrap();
        assert_eq!(loaded.to_bytes(), c.to_bytes());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_sections_error_instead_of_panicking() {
        let c = sample_closure();
        let good = c.to_paged_bytes();
        // Truncations at every granularity: parse must reject, never panic.
        for cut in [0, 1, 100, good.len() / 2, good.len() - 1] {
            assert!(PagedPlane::open_from_bytes(&good[..cut], 4).is_err());
        }
        // A flipped header byte breaks the header digest.
        let mut bad = good.clone();
        let hdr = bad.len() - HEADER_BYTES - FOOTER_BYTES;
        bad[hdr + 16] ^= 0xff;
        assert!(matches!(
            PagedPlane::open_from_bytes(&bad, 4),
            Err(PagedError::Corrupt(_))
        ));
        // A flipped payload byte passes open (O(directory) by design) but
        // fails the deep verify.
        let mut bad = good.clone();
        let meta_probe = PagedPlane::open_from_bytes(&good, 4).unwrap();
        let off = meta_probe.meta.payload_off as usize;
        bad[off] ^= 0xff;
        let opened = PagedPlane::open_from_bytes(&bad, 4).unwrap();
        assert!(matches!(opened.verify_payload(), Err(PagedError::Corrupt(_))));
    }

    #[test]
    fn empty_and_single_node_planes() {
        for edges in [vec![], vec![(0u32, 1u32)]] {
            let g = tc_graph::DiGraph::from_edges(edges);
            let c = CompressedClosure::build(&g).unwrap();
            let bytes = c.to_paged_bytes();
            let paged = PagedPlane::open_from_bytes(&bytes, 2).unwrap();
            assert_plane_matches(&c, &paged);
        }
    }

    fn hybrid_closure() -> CompressedClosure {
        // Dense layered graphs fragment successor sets, so a low threshold
        // actually selects bitset rows.
        let g = generators::dense_layered(6, 18, 4, 9);
        ClosureConfig::new().hybrid(2).build(&g).unwrap()
    }

    #[test]
    fn hybrid_overlay_roundtrips_and_matches_every_plane() {
        let c = hybrid_closure();
        let bytes = c.to_paged_bytes();
        let paged = PagedPlane::open_from_bytes(&bytes, 8).unwrap();
        assert_eq!(paged.hybrid_threshold(), Some(2));
        assert!(paged.bitset_rows() > 0, "threshold 2 must select bitset rows");
        // Identical to the hybrid in-memory plane...
        assert_plane_matches(&c, &paged);
        // ...and to a pure-interval freeze of the same labels.
        let mut pure = c.clone();
        pure.set_hybrid_threshold(usize::MAX);
        pure.freeze();
        let plain = pure.plane().expect("frozen");
        for v in (0..c.node_count()).map(NodeId::from_index) {
            assert_eq!(paged.successors(v), plain.successors(v));
            assert_eq!(paged.successor_count(v), plain.successor_count(v));
            for w in (0..c.node_count()).step_by(5).map(NodeId::from_index) {
                assert_eq!(paged.reaches(v, w), plain.reaches(v, w), "reaches({v:?},{w:?})");
            }
        }
    }

    #[test]
    fn hybrid_overlay_survives_a_file_roundtrip() {
        let c = hybrid_closure();
        let path = temp_path("hybrid");
        c.save_paged(&path).unwrap();
        let paged = PagedPlane::open(&path, 16).unwrap();
        assert!(paged.bitset_rows() > 0);
        assert_plane_matches(&c, &paged);
        // `load` sees through the overlay *and* the plane section, and the
        // HYB1 config footer restores the threshold.
        let loaded = CompressedClosure::load(&path).unwrap();
        assert_eq!(loaded.hybrid_threshold(), 2);
        assert_eq!(loaded.to_bytes(), c.to_bytes());
        drop(paged);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_hybrid_overlays_error_instead_of_panicking() {
        let c = hybrid_closure();
        let good = c.to_paged_bytes();
        // A flipped overlay payload byte breaks the payload digest.
        let plane_end = {
            let t = &good[good.len() - HYBRID_TRAILER_BYTES..];
            rd_u64(t, 44) as usize
        };
        let mut bad = good.clone();
        bad[plane_end] ^= 0xff;
        assert!(matches!(
            PagedPlane::open_from_bytes(&bad, 4),
            Err(PagedError::Corrupt(_))
        ));
        // A flipped trailer byte breaks the trailer digest.
        let mut bad = good.clone();
        let at = good.len() - HYBRID_TRAILER_BYTES + 20;
        bad[at] ^= 0xff;
        assert!(PagedPlane::open_from_bytes(&bad, 4).is_err());
        // Truncations anywhere in the overlay reject cleanly.
        for cut in [plane_end + 1, good.len() - HYBRID_TRAILER_BYTES, good.len() - 1] {
            assert!(PagedPlane::open_from_bytes(&good[..cut], 4).is_err());
        }
    }

    #[test]
    fn plane_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PagedPlane>();
        assert_send_sync::<PagedClosure>();
    }
}
