//! Storage accounting, exactly as the paper's §3.3 counts it.

use std::fmt;

/// Storage statistics of a compressed closure, in the units of the paper's
/// performance evaluation:
///
/// * original graph = number of arcs ("the number of successors at each
///   node" for the base relation),
/// * full transitive closure = number of (irreflexive) closure successors,
/// * compressed closure = `2 ×` interval count ("we have computed the
///   storage required for the compressed closure as twice the number of
///   intervals required at each node").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosureStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Arcs in the base relation.
    pub graph_arcs: usize,
    /// Tree intervals (always one per node).
    pub tree_intervals: usize,
    /// Non-tree intervals surviving subsumption (Lemma 4 counts these).
    pub non_tree_intervals: usize,
    /// Size of the full (uncompressed, irreflexive) transitive closure.
    pub closure_size: usize,
}

impl ClosureStats {
    /// Total interval count.
    pub fn total_intervals(&self) -> usize {
        self.tree_intervals + self.non_tree_intervals
    }

    /// Storage units for the compressed closure: `2 ×` intervals.
    pub fn compressed_units(&self) -> usize {
        2 * self.total_intervals()
    }

    /// Compressed storage as a multiple of the original relation (the y-axis
    /// of Figures 3.9–3.11).
    pub fn compressed_ratio(&self) -> f64 {
        ratio(self.compressed_units(), self.graph_arcs)
    }

    /// Full-closure storage as a multiple of the original relation.
    pub fn closure_ratio(&self) -> f64 {
        ratio(self.closure_size, self.graph_arcs)
    }

    /// Compression factor: full closure size over compressed size.
    pub fn compression_factor(&self) -> f64 {
        ratio(self.closure_size, self.compressed_units())
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        f64::NAN
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for ClosureStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} arcs | closure {} | intervals {} (tree {}, non-tree {}) | compressed {} units ({:.2}x graph, {:.2}x closure)",
            self.nodes,
            self.graph_arcs,
            self.closure_size,
            self.total_intervals(),
            self.tree_intervals,
            self.non_tree_intervals,
            self.compressed_units(),
            self.compressed_ratio(),
            1.0 / self.compression_factor(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClosureStats {
        ClosureStats {
            nodes: 10,
            graph_arcs: 20,
            tree_intervals: 10,
            non_tree_intervals: 5,
            closure_size: 60,
        }
    }

    #[test]
    fn arithmetic() {
        let s = sample();
        assert_eq!(s.total_intervals(), 15);
        assert_eq!(s.compressed_units(), 30);
        assert!((s.compressed_ratio() - 1.5).abs() < 1e-12);
        assert!((s.closure_ratio() - 3.0).abs() < 1e-12);
        assert!((s.compression_factor() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_arc_graph_yields_nan_ratios() {
        let s = ClosureStats {
            graph_arcs: 0,
            ..sample()
        };
        assert!(s.compressed_ratio().is_nan());
    }

    #[test]
    fn display_is_informative() {
        let text = sample().to_string();
        assert!(text.contains("10 nodes"));
        assert!(text.contains("non-tree 5"));
    }
}
