//! Reverse-topological interval propagation (§3.2).
//!
//! "Examine all the nodes of G in the reverse topological order. At each
//! node p: for every arc (p,q), add all the intervals associated with the
//! node q to the intervals associated with the node p. At the time of adding
//! an interval ... if one interval is subsumed by another, discard the
//! subsumed interval."

use tc_graph::topo::Levels;
use tc_graph::{DiGraph, NodeId};
use tc_interval::Interval;

use crate::labeling::Labeling;
use crate::parallel;

/// Runs the full propagation sweep over `g`, assuming `lab.sets` currently
/// holds exactly the tree intervals (as after [`Labeling::assign`] or
/// [`Labeling::reset_sets`]). `topo_order` must be a topological order of
/// `g`; nodes are processed in reverse so every successor's set is complete
/// before it is inherited.
///
/// For each arc `(p, q)`, `p` inherits `q`'s set with one substitution: `q`'s
/// own tree interval is inherited in its *advertised* form (which covers
/// `q`'s refinement-reserve tail), so future constant-time refinements under
/// `q` are visible to everything that reaches `q`. With `reserve == 0` the
/// two forms coincide.
pub(crate) fn propagate_all(g: &DiGraph, topo_order: &[NodeId], lab: &mut Labeling) {
    let mut scratch: Vec<Interval> = Vec::new();
    for &p in topo_order.iter().rev() {
        for &q in g.successors(p) {
            inherit_into_scratch(lab, q, &mut scratch);
            for &iv in &scratch {
                lab.sets[p.index()].insert(iv);
            }
        }
    }
}

/// Level-parallel variant of [`propagate_all`]: sweeps the topological
/// levels of `g` from the sinks upward, fanning each level's nodes across
/// `threads` scoped workers.
///
/// Nodes on the same level are mutually unreachable (every arc strictly
/// descends levels), so a node's sweep only *reads* sets finalized in
/// earlier levels and *writes* its own — which the workers do by returning
/// an owned replacement set that the calling thread installs after the
/// join. Each node runs the exact insert sequence of the serial sweep, so
/// the resulting `Labeling` is bit-identical to `propagate_all`'s.
pub(crate) fn propagate_all_levels(g: &DiGraph, levels: &Levels, lab: &mut Labeling, threads: usize) {
    let mut sweep = levels.iter_up();
    // Level 0 holds the sinks: no successors, nothing to inherit.
    sweep.next();
    for level in sweep {
        let read_lab: &Labeling = lab;
        let new_sets = parallel::map_chunks(level, threads, |chunk| {
            let mut scratch: Vec<Interval> = Vec::new();
            chunk
                .iter()
                .map(|&p| {
                    let mut set = read_lab.sets[p.index()].clone();
                    for &q in g.successors(p) {
                        inherit_into_scratch(read_lab, q, &mut scratch);
                        for &iv in &scratch {
                            set.insert(iv);
                        }
                    }
                    set
                })
                .collect()
        });
        for (&p, set) in level.iter().zip(new_sets) {
            lab.sets[p.index()] = set;
        }
    }
}

/// Runs the full propagation sweep, choosing between the serial and the
/// level-parallel implementation from the (unresolved) `threads` knob of a
/// [`crate::ClosureConfig`]. Used by relabeling and delete-repair paths,
/// which recompute everything from a graph known to be acyclic.
pub(crate) fn propagate_dispatch(g: &DiGraph, lab: &mut Labeling, threads_knob: usize) {
    let threads = parallel::effective_threads(threads_knob);
    if threads > 1 {
        let levels = tc_graph::topo::levels(g).expect("closure graph must stay acyclic");
        propagate_all_levels(g, &levels, lab, threads);
    } else {
        let order = tc_graph::topo::topo_sort(g).expect("closure graph must stay acyclic");
        propagate_all(g, &order, lab);
    }
}

/// Scoped sweep (§4.2 locality): re-propagates only the nodes in `order`,
/// treating every other node's existing interval set as a frozen input.
///
/// `order` must be an induced reverse topological order of the affected
/// region (successors before predecessors), and the caller must already have
/// reset those nodes' sets to their tree singletons. Soundness rests on two
/// facts (see DESIGN.md, "Scoped deletion recompute"): any path between two
/// affected nodes passes only through affected nodes, so the induced order
/// suffices; and an unaffected node reaches no affected node, so its set is
/// already at its post-deletion fixed point and can be inherited verbatim.
pub(crate) fn propagate_scoped(g: &DiGraph, order: &[NodeId], lab: &mut Labeling) {
    let mut scratch: Vec<Interval> = Vec::new();
    for &p in order {
        for &q in g.successors(p) {
            inherit_into_scratch(lab, q, &mut scratch);
            for &iv in &scratch {
                lab.sets[p.index()].insert(iv);
            }
        }
    }
}

/// Level-parallel variant of [`propagate_scoped`], mirroring
/// [`propagate_all_levels`] over the *induced* levels of the affected
/// region: `level(p) = 1 + max(level(q))` over `p`'s affected successors
/// (0 with none). Nodes on the same induced level cannot reach one another
/// (an affected path between them would force a level difference), so each
/// worker only reads sets finalized on earlier levels or frozen unaffected
/// sets. Per node the insert sequence is identical to the serial sweep's,
/// so the result is bit-identical.
pub(crate) fn propagate_scoped_levels(
    g: &DiGraph,
    order: &[NodeId],
    lab: &mut Labeling,
    threads: usize,
) {
    let n = g.node_count();
    const UNAFFECTED: u32 = u32::MAX;
    let mut level = vec![UNAFFECTED; n];
    let mut max_level = 0u32;
    // `order` is reverse-topological over the region, so every affected
    // successor's level is final when its predecessor is visited.
    for &p in order {
        let mut lv = 0u32;
        for &q in g.successors(p) {
            if level[q.index()] != UNAFFECTED {
                lv = lv.max(level[q.index()] + 1);
            }
        }
        level[p.index()] = lv;
        max_level = max_level.max(lv);
    }
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_level as usize + 1];
    for &p in order {
        buckets[level[p.index()] as usize].push(p);
    }
    // Unlike the global sweep, induced level 0 is not skipped: its nodes
    // have no affected successors but may still inherit from frozen ones.
    for bucket in &buckets {
        let read_lab: &Labeling = lab;
        let new_sets = parallel::map_chunks(bucket, threads, |chunk| {
            let mut scratch: Vec<Interval> = Vec::new();
            chunk
                .iter()
                .map(|&p| {
                    let mut set = read_lab.sets[p.index()].clone();
                    for &q in g.successors(p) {
                        inherit_into_scratch(read_lab, q, &mut scratch);
                        for &iv in &scratch {
                            set.insert(iv);
                        }
                    }
                    set
                })
                .collect()
        });
        for (&p, set) in bucket.iter().zip(new_sets) {
            lab.sets[p.index()] = set;
        }
    }
}

/// Runs the scoped sweep, choosing the serial or level-parallel variant
/// from the (unresolved) `threads` knob — the deletion-path counterpart of
/// [`propagate_dispatch`].
pub(crate) fn propagate_scoped_dispatch(
    g: &DiGraph,
    order: &[NodeId],
    lab: &mut Labeling,
    threads_knob: usize,
) {
    let threads = parallel::effective_threads(threads_knob);
    if threads > 1 {
        propagate_scoped_levels(g, order, lab, threads);
    } else {
        propagate_scoped(g, order, lab);
    }
}

/// Collects the intervals `q` passes to an inheritor: its advertised tree
/// interval plus every non-tree interval it holds.
pub(crate) fn inherit_into_scratch(lab: &Labeling, q: NodeId, scratch: &mut Vec<Interval>) {
    scratch.clear();
    let own = lab.tree_interval(q);
    let advertised = lab.advertised_interval(q);
    for iv in lab.sets[q.index()].iter() {
        if iv == own {
            scratch.push(advertised);
        } else {
            scratch.push(iv);
        }
    }
    // If `q`'s set was merged, its own tree interval may have been absorbed
    // into a wider interval; the advertised tail must still be inherited.
    if lab.reserve > 0 && !scratch.contains(&advertised) {
        scratch.push(advertised);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::Labeling;
    use crate::treecover::{cover_of, CoverStrategy};
    use tc_graph::topo;

    /// Paper-style DAG: diamond 0 -> {1,2} -> 3 plus an extra sink 4 under 2.
    fn dag() -> DiGraph {
        DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3), (2, 4)])
    }

    fn propagated(g: &DiGraph, gap: u64, reserve: u64) -> Labeling {
        let cover = cover_of(g, CoverStrategy::Optimal).unwrap();
        let mut lab = Labeling::assign(&cover, gap, reserve);
        let order = topo::topo_sort(g).unwrap();
        propagate_all(g, &order, &mut lab);
        lab
    }

    #[test]
    fn non_tree_arcs_produce_extra_intervals() {
        let g = dag();
        let lab = propagated(&g, 1, 0);
        // Node 3's tree parent is 1 (tie-break), so (2,3) is a non-tree arc:
        // node 2 must hold its own interval plus 3's.
        assert_eq!(lab.sets[2].count(), 2);
        assert!(lab.sets[2].contains_point(lab.post[3]));
        // The root reaches everything through its tree interval alone.
        assert_eq!(lab.sets[0].count(), 1);
    }

    #[test]
    fn propagation_matches_dfs_reachability() {
        let g = dag();
        let lab = propagated(&g, 7, 0);
        for u in g.nodes() {
            for v in g.nodes() {
                let expect = tc_graph::traverse::reaches(&g, u, v);
                let got = lab.sets[u.index()].contains_point(lab.post[v.index()]);
                assert_eq!(got, expect, "reach({u:?},{v:?})");
            }
        }
    }

    #[test]
    fn subsumed_intervals_are_discarded() {
        // Chain 0 -> 1 -> 2 with shortcut 0 -> 2: the shortcut's interval is
        // subsumed by 0's tree interval, so 0 keeps a single interval.
        let g = DiGraph::from_edges([(0, 1), (1, 2), (0, 2)]);
        let lab = propagated(&g, 1, 0);
        assert_eq!(lab.sets[0].count(), 1);
    }

    #[test]
    fn reserve_tail_is_inherited_by_predecessors_only() {
        let g = dag();
        let lab = propagated(&g, 16, 3);
        // Node 2 inherits 3's advertised interval: it must cover 3's tail.
        let tail_num = lab.post[3] + 1; // a number inside 3's reserve
        assert!(lab.sets[2].contains_point(tail_num));
        // Node 3 itself must NOT claim its own tail.
        assert!(!lab.sets[3].contains_point(tail_num));
        // Node 0 covers the tail through its tree interval (3 is a tree
        // descendant).
        assert!(lab.sets[0].contains_point(tail_num));
        // Node 4 has nothing to do with 3's tail.
        assert!(!lab.sets[4].contains_point(tail_num));
    }
}
