//! Reverse-topological interval propagation (§3.2).
//!
//! "Examine all the nodes of G in the reverse topological order. At each
//! node p: for every arc (p,q), add all the intervals associated with the
//! node q to the intervals associated with the node p. At the time of adding
//! an interval ... if one interval is subsumed by another, discard the
//! subsumed interval."

use tc_graph::{DiGraph, NodeId};
use tc_interval::Interval;

use crate::labeling::Labeling;

/// Runs the full propagation sweep over `g`, assuming `lab.sets` currently
/// holds exactly the tree intervals (as after [`Labeling::assign`] or
/// [`Labeling::reset_sets`]). `topo_order` must be a topological order of
/// `g`; nodes are processed in reverse so every successor's set is complete
/// before it is inherited.
///
/// For each arc `(p, q)`, `p` inherits `q`'s set with one substitution: `q`'s
/// own tree interval is inherited in its *advertised* form (which covers
/// `q`'s refinement-reserve tail), so future constant-time refinements under
/// `q` are visible to everything that reaches `q`. With `reserve == 0` the
/// two forms coincide.
pub(crate) fn propagate_all(g: &DiGraph, topo_order: &[NodeId], lab: &mut Labeling) {
    let mut scratch: Vec<Interval> = Vec::new();
    for &p in topo_order.iter().rev() {
        for &q in g.successors(p) {
            inherit_into_scratch(lab, q, &mut scratch);
            for &iv in &scratch {
                lab.sets[p.index()].insert(iv);
            }
        }
    }
}

/// Collects the intervals `q` passes to an inheritor: its advertised tree
/// interval plus every non-tree interval it holds.
pub(crate) fn inherit_into_scratch(lab: &Labeling, q: NodeId, scratch: &mut Vec<Interval>) {
    scratch.clear();
    let own = lab.tree_interval(q);
    let advertised = lab.advertised_interval(q);
    for iv in lab.sets[q.index()].iter() {
        if iv == own {
            scratch.push(advertised);
        } else {
            scratch.push(iv);
        }
    }
    // If `q`'s set was merged, its own tree interval may have been absorbed
    // into a wider interval; the advertised tail must still be inherited.
    if lab.reserve > 0 && !scratch.contains(&advertised) {
        scratch.push(advertised);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::Labeling;
    use crate::treecover::{cover_of, CoverStrategy};
    use tc_graph::topo;

    /// Paper-style DAG: diamond 0 -> {1,2} -> 3 plus an extra sink 4 under 2.
    fn dag() -> DiGraph {
        DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3), (2, 4)])
    }

    fn propagated(g: &DiGraph, gap: u64, reserve: u64) -> Labeling {
        let cover = cover_of(g, CoverStrategy::Optimal).unwrap();
        let mut lab = Labeling::assign(&cover, gap, reserve);
        let order = topo::topo_sort(g).unwrap();
        propagate_all(g, &order, &mut lab);
        lab
    }

    #[test]
    fn non_tree_arcs_produce_extra_intervals() {
        let g = dag();
        let lab = propagated(&g, 1, 0);
        // Node 3's tree parent is 1 (tie-break), so (2,3) is a non-tree arc:
        // node 2 must hold its own interval plus 3's.
        assert_eq!(lab.sets[2].count(), 2);
        assert!(lab.sets[2].contains_point(lab.post[3]));
        // The root reaches everything through its tree interval alone.
        assert_eq!(lab.sets[0].count(), 1);
    }

    #[test]
    fn propagation_matches_dfs_reachability() {
        let g = dag();
        let lab = propagated(&g, 7, 0);
        for u in g.nodes() {
            for v in g.nodes() {
                let expect = tc_graph::traverse::reaches(&g, u, v);
                let got = lab.sets[u.index()].contains_point(lab.post[v.index()]);
                assert_eq!(got, expect, "reach({u:?},{v:?})");
            }
        }
    }

    #[test]
    fn subsumed_intervals_are_discarded() {
        // Chain 0 -> 1 -> 2 with shortcut 0 -> 2: the shortcut's interval is
        // subsumed by 0's tree interval, so 0 keeps a single interval.
        let g = DiGraph::from_edges([(0, 1), (1, 2), (0, 2)]);
        let lab = propagated(&g, 1, 0);
        assert_eq!(lab.sets[0].count(), 1);
    }

    #[test]
    fn reserve_tail_is_inherited_by_predecessors_only() {
        let g = dag();
        let lab = propagated(&g, 16, 3);
        // Node 2 inherits 3's advertised interval: it must cover 3's tail.
        let tail_num = lab.post[3] + 1; // a number inside 3's reserve
        assert!(lab.sets[2].contains_point(tail_num));
        // Node 3 itself must NOT claim its own tail.
        assert!(!lab.sets[3].contains_point(tail_num));
        // Node 0 covers the tail through its tree interval (3 is a tree
        // descendant).
        assert!(lab.sets[0].contains_point(tail_num));
        // Node 4 has nothing to do with 3's tail.
        assert!(!lab.sets[4].contains_point(tail_num));
    }
}
