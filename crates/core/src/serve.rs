//! Concurrent serving: lock-free snapshot reads over a batched writer.
//!
//! The paper's premise is that a compressed closure is *served*, not
//! recomputed — "compression is a one-time activity, and once the
//! compressed closure has been obtained, it can be repeatedly used" (§3.2)
//! — and §4's incremental updates exist so the structure stays online while
//! the relation churns. [`ClosureService`] supplies the concurrency story
//! those two halves need (DESIGN.md, "Concurrent serving"):
//!
//! * **Readers** hold a [`ServiceReader`], whose probes answer from an
//!   immutable [`ServiceSnapshot`] (a frozen [`QueryPlane`] per direction)
//!   behind an `Arc`. The fast path is one atomic epoch load: while the
//!   epoch matches the reader's cached snapshot, a probe touches no lock
//!   and allocates nothing. Only when the writer has published something
//!   newer does the reader take the swap-cell mutex once to clone the new
//!   `Arc`.
//! * **The writer** is a single background thread owning the mutable
//!   closure. Submitted [`ServiceOp`]s queue up and are coalesced into
//!   batches (at most [`ServiceConfig::batch_max`] per round); each batch
//!   is applied with the §4 update routines, optionally structurally
//!   audited, frozen into a fresh snapshot, and *published* by swapping the
//!   shared `Arc` and bumping the epoch. Freeze-time buffers and — when no
//!   reader still pins the retired snapshot — the retired plane's arrays
//!   are recycled round over round.
//!
//! The result is *bounded staleness*: a reader is never blocked by the
//! writer and never observes a torn or thawed closure, but may answer from
//! a snapshot up to one publish behind the applied state (plus whatever is
//! still queued). [`ServiceReader::staleness`] reports exactly how far
//! behind (in submitted ops) the pinned snapshot is. Because ops are
//! consumed strictly in submission order and snapshots are cut only at
//! batch boundaries, every answer a reader can ever observe corresponds to
//! some *prefix* of the submitted op sequence — the invariant the
//! snapshot-consistency stress test checks against a DFS oracle.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use tc_graph::NodeId;

use crate::bidir::BiClosure;
use crate::paged::PagedPlane;
use crate::plane::{FreezeScratch, QueryPlane};
use crate::updates::UpdateError;
use crate::CompressedClosure;

/// One mutation submitted to the service's write queue — the §4 update
/// vocabulary, minus the arguments the writer derives itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceOp {
    /// Add a node with incoming arcs from `parents` (empty = new root).
    AddNode {
        /// Immediate predecessors of the new node.
        parents: Vec<NodeId>,
    },
    /// Add the arc `src -> dst`.
    AddEdge {
        /// Arc source.
        src: NodeId,
        /// Arc destination.
        dst: NodeId,
    },
    /// Remove the arc `src -> dst`.
    RemoveEdge {
        /// Arc source.
        src: NodeId,
        /// Arc destination.
        dst: NodeId,
    },
    /// Remove `node` and all incident arcs.
    RemoveNode {
        /// The node to remove.
        node: NodeId,
    },
    /// Interpose a refinement node between `child` and its current
    /// immediate predecessors (§4.1). The writer reads the predecessor
    /// list at apply time, so the op stays valid however the queue ahead
    /// of it reshapes the graph.
    Refine {
        /// The node being refined.
        child: NodeId,
    },
    /// Re-label: fresh gaps and reserves, tombstones dropped.
    Relabel,
    /// Rebuild from scratch with a freshly optimized tree cover.
    Rebuild,
}

/// Tuning knobs for [`ClosureService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Most ops coalesced into one apply-freeze-publish round. Larger
    /// batches amortize the freeze over more ops at the cost of staleness.
    pub batch_max: usize,
    /// Run the O(n + intervals) structural audit on the mutable closure
    /// after every batch, before publishing. Defaults to on in debug
    /// builds; the first violation is recorded in [`ServiceStats`] (the
    /// tainted state is still published — the audit is a tripwire, not a
    /// rollback).
    pub audit: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { batch_max: 1024, audit: cfg!(debug_assertions) }
    }
}

impl ServiceConfig {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-round op coalescing limit (clamped to at least 1).
    pub fn batch_max(mut self, batch_max: usize) -> Self {
        self.batch_max = batch_max.max(1);
        self
    }

    /// Enables or disables the per-batch structural audit.
    pub fn audit(mut self, enable: bool) -> Self {
        self.audit = enable;
        self
    }
}

/// Counters describing a service's progress, all measured in ops except
/// `publishes`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Ops accepted by [`ClosureService::submit`] so far.
    pub submitted: u64,
    /// Ops consumed from the queue (applied or skipped) and covered by a
    /// published snapshot.
    pub consumed: u64,
    /// Consumed ops that mutated the closure.
    pub applied: u64,
    /// Consumed ops rejected by the update routines (unknown node, cycle,
    /// exhausted reserve, ...) and skipped without effect.
    pub skipped: u64,
    /// Snapshots published, the initial one included.
    pub publishes: u64,
    /// First structural-audit failure observed, if any (see
    /// [`ServiceConfig::audit`]).
    pub audit_violation: Option<String>,
}

impl ServiceStats {
    /// Ops submitted but not yet covered by a published snapshot.
    pub fn staleness(&self) -> u64 {
        self.submitted.saturating_sub(self.consumed)
    }
}

/// Error returned by [`ClosureService::submit`] once the service has been
/// closed: the op was *not* enqueued and will never be applied.
///
/// Every op ever accepted (`Ok(seq)`) is still drained and applied (or
/// skipped with accounting) before the writer exits — a submission racing
/// [`ClosureService::close`] is therefore either applied or observably
/// rejected here, never silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceClosed;

impl fmt::Display for ServiceClosed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "service is closed: op rejected, not enqueued")
    }
}

impl std::error::Error for ServiceClosed {}

/// The mutable closure a service writes to: one direction, or a
/// [`BiClosure`] pair when predecessor queries should decode from the
/// reverse labels instead of stabbing the forward index.
#[derive(Debug)]
pub enum ServiceBackend {
    /// A single forward closure.
    Single(Box<CompressedClosure>),
    /// A forward/reverse pair.
    Bidirectional(Box<BiClosure>),
}

impl ServiceBackend {
    fn apply(&mut self, op: &ServiceOp) -> Result<(), UpdateError> {
        match self {
            ServiceBackend::Single(c) => match op {
                ServiceOp::AddNode { parents } => c.add_node_with_parents(parents).map(|_| ()),
                ServiceOp::AddEdge { src, dst } => c.add_edge(*src, *dst).map(|_| ()),
                ServiceOp::RemoveEdge { src, dst } => c.remove_edge(*src, *dst),
                ServiceOp::RemoveNode { node } => c.remove_node(*node),
                ServiceOp::Refine { child } => {
                    if child.index() >= c.node_count() {
                        return Err(UpdateError::UnknownNode(*child));
                    }
                    let parents = c.graph().predecessors(*child).to_vec();
                    c.refine_insert(*child, &parents).map(|_| ())
                }
                ServiceOp::Relabel => {
                    c.relabel();
                    Ok(())
                }
                ServiceOp::Rebuild => {
                    c.rebuild();
                    Ok(())
                }
            },
            ServiceBackend::Bidirectional(bi) => match op {
                ServiceOp::AddNode { parents } => bi.add_node_with_parents(parents).map(|_| ()),
                ServiceOp::AddEdge { src, dst } => bi.add_edge(*src, *dst).map(|_| ()),
                ServiceOp::RemoveEdge { src, dst } => bi.remove_edge(*src, *dst),
                ServiceOp::RemoveNode { node } => bi.remove_node(*node),
                ServiceOp::Refine { child } => {
                    if child.index() >= bi.node_count() {
                        return Err(UpdateError::UnknownNode(*child));
                    }
                    let parents = bi.forward().graph().predecessors(*child).to_vec();
                    bi.refine_insert(*child, &parents).map(|_| ())
                }
                ServiceOp::Relabel => {
                    bi.relabel();
                    Ok(())
                }
                ServiceOp::Rebuild => {
                    bi.rebuild();
                    Ok(())
                }
            },
        }
    }

    fn audit(&self) -> Result<(), String> {
        match self {
            ServiceBackend::Single(c) => c.audit(),
            ServiceBackend::Bidirectional(bi) => {
                bi.forward().audit()?;
                bi.reverse().audit()
            }
        }
    }

    fn freeze_snapshot(
        &self,
        consumed: u64,
        version: u64,
        forward_scratch: &mut FreezeScratch,
        reverse_scratch: &mut FreezeScratch,
    ) -> ServiceSnapshot {
        match self {
            ServiceBackend::Single(c) => ServiceSnapshot {
                // A closure configured with `ClosureConfig::paged` publishes
                // out-of-core snapshots: the freeze streams to a temp `PLN1`
                // file and readers probe it through the buffer pool, so the
                // served plane never has to fit in RAM. An I/O failure falls
                // back to the (bit-identical) resident plane rather than
                // killing the writer.
                forward: if c.config.paged_pool > 0 {
                    match crate::paged::freeze_paged(
                        &c.graph,
                        &c.lab,
                        c.config.hybrid_threshold,
                        c.config.paged_pool,
                    ) {
                        Ok(plane) => SnapshotPlane::Paged(Arc::new(plane)),
                        Err(_) => SnapshotPlane::Mem(QueryPlane::freeze_with(
                            &c.graph,
                            &c.lab,
                            c.config.hybrid_threshold,
                            forward_scratch,
                        )),
                    }
                } else {
                    SnapshotPlane::Mem(QueryPlane::freeze_with(
                        &c.graph,
                        &c.lab,
                        c.config.hybrid_threshold,
                        forward_scratch,
                    ))
                },
                reverse: None,
                nodes: c.node_count(),
                applied_seq: consumed,
                version,
            },
            // Bidirectional backends keep both planes resident: the reverse
            // plane exists precisely to make predecessor decodes cheap, and
            // paging it would reintroduce the latency it buys back.
            ServiceBackend::Bidirectional(bi) => ServiceSnapshot {
                forward: SnapshotPlane::Mem(QueryPlane::freeze_with(
                    &bi.forward().graph,
                    &bi.forward().lab,
                    bi.forward().config.hybrid_threshold,
                    forward_scratch,
                )),
                reverse: Some(QueryPlane::freeze_with(
                    &bi.reverse().graph,
                    &bi.reverse().lab,
                    bi.reverse().config.hybrid_threshold,
                    reverse_scratch,
                )),
                nodes: bi.node_count(),
                applied_seq: consumed,
                version,
            },
        }
    }

    /// The single-direction closure, if that is what the service ran on.
    pub fn into_single(self) -> Option<CompressedClosure> {
        match self {
            ServiceBackend::Single(c) => Some(*c),
            ServiceBackend::Bidirectional(_) => None,
        }
    }

    /// The bidirectional closure, if that is what the service ran on.
    pub fn into_bidirectional(self) -> Option<BiClosure> {
        match self {
            ServiceBackend::Single(_) => None,
            ServiceBackend::Bidirectional(bi) => Some(*bi),
        }
    }
}

/// The forward plane behind a published snapshot: a resident
/// [`QueryPlane`], or an out-of-core [`PagedPlane`] answering through the
/// buffer pool. Both give bit-identical answers; the enum only decides
/// where the bytes live.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // one per snapshot, always behind an Arc
enum SnapshotPlane {
    /// Arrays resident in memory.
    Mem(QueryPlane),
    /// A `PLN1` file section probed through the buffer pool.
    Paged(Arc<PagedPlane>),
}

impl SnapshotPlane {
    #[inline]
    fn reaches(&self, src: NodeId, dst: NodeId) -> bool {
        match self {
            SnapshotPlane::Mem(p) => p.reaches(src, dst),
            SnapshotPlane::Paged(p) => p.reaches(src, dst),
        }
    }

    fn successors(&self, node: NodeId) -> Vec<NodeId> {
        match self {
            SnapshotPlane::Mem(p) => p.successors(node),
            SnapshotPlane::Paged(p) => p.successors(node),
        }
    }

    fn successors_into(&self, node: NodeId, out: &mut Vec<NodeId>) {
        match self {
            SnapshotPlane::Mem(p) => p.successors_into(node, out),
            SnapshotPlane::Paged(p) => p.successors_into(node, out),
        }
    }

    fn successor_count(&self, node: NodeId) -> usize {
        match self {
            SnapshotPlane::Mem(p) => p.successor_count(node),
            SnapshotPlane::Paged(p) => p.successor_count(node),
        }
    }

    fn predecessors(&self, node: NodeId) -> Vec<NodeId> {
        match self {
            SnapshotPlane::Mem(p) => p.predecessors(node),
            SnapshotPlane::Paged(p) => p.predecessors(node),
        }
    }

    fn predecessors_into(&self, node: NodeId, scratch: &mut Vec<u32>, out: &mut Vec<NodeId>) {
        match self {
            SnapshotPlane::Mem(p) => p.predecessors_into(node, scratch, out),
            SnapshotPlane::Paged(p) => p.predecessors_into(node, out),
        }
    }
}

/// One published, immutable view of the closure: a frozen forward plane —
/// resident, or paged out-of-core when the backend was configured with
/// [`crate::ClosureConfig::paged`] — plus a reverse plane for bidirectional
/// backends, stamped with the prefix of submitted ops it reflects.
///
/// Nodes created after the snapshot was cut simply do not exist in it:
/// probes involving them report unreachable / empty rather than panicking,
/// which is the honest answer under bounded staleness.
#[derive(Debug)]
pub struct ServiceSnapshot {
    forward: SnapshotPlane,
    reverse: Option<QueryPlane>,
    nodes: usize,
    applied_seq: u64,
    version: u64,
}

impl ServiceSnapshot {
    /// Snapshots a standalone closure outside any service — the fuzzer's
    /// way of pinning "the published view" at a trace point and replaying
    /// queries against it later. A closure already frozen out-of-core is
    /// captured by pinning its paged plane (an `Arc` clone — no freeze at
    /// all); anything else freezes a resident plane.
    pub fn capture(closure: &CompressedClosure) -> ServiceSnapshot {
        let forward = match closure.paged_plane() {
            Some(paged) => SnapshotPlane::Paged(Arc::clone(paged)),
            None => SnapshotPlane::Mem(QueryPlane::freeze(
                &closure.graph,
                &closure.lab,
                closure.config.hybrid_threshold,
            )),
        };
        ServiceSnapshot {
            forward,
            reverse: None,
            nodes: closure.node_count(),
            applied_seq: 0,
            version: 0,
        }
    }

    /// Whether this snapshot serves its forward plane out-of-core.
    pub fn is_paged(&self) -> bool {
        matches!(self.forward, SnapshotPlane::Paged(_))
    }

    /// Number of nodes the snapshot knows about.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of submitted ops this snapshot reflects (the consumed
    /// prefix's length).
    #[inline]
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Publish counter stamped by the writer; the initial snapshot is 1.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether `src` reaches `dst` (reflexive). Nodes beyond the snapshot
    /// are unreachable. Zero locks, zero allocation.
    #[inline]
    pub fn reaches(&self, src: NodeId, dst: NodeId) -> bool {
        src.index() < self.nodes && dst.index() < self.nodes && self.forward.reaches(src, dst)
    }

    /// Answers every pair into a fresh vector; see
    /// [`ServiceSnapshot::reaches_batch_into`] for the allocation-free
    /// form.
    pub fn reaches_batch(&self, pairs: &[(NodeId, NodeId)]) -> Vec<bool> {
        let mut out = Vec::new();
        self.reaches_batch_into(pairs, &mut out);
        out
    }

    /// Answers every pair into `out` (cleared first). With a caller-reused
    /// buffer the whole batch allocates nothing.
    pub fn reaches_batch_into(&self, pairs: &[(NodeId, NodeId)], out: &mut Vec<bool>) {
        out.clear();
        out.extend(pairs.iter().map(|&(src, dst)| self.reaches(src, dst)));
    }

    /// All nodes reachable from `node` (including itself), ascending by
    /// postorder number; empty for nodes beyond the snapshot.
    pub fn successors(&self, node: NodeId) -> Vec<NodeId> {
        if node.index() >= self.nodes {
            return Vec::new();
        }
        self.forward.successors(node)
    }

    /// [`ServiceSnapshot::successors`] into a caller-provided buffer
    /// (cleared first); with a reused buffer the decode allocates nothing.
    pub fn successors_into(&self, node: NodeId, out: &mut Vec<NodeId>) {
        if node.index() >= self.nodes {
            out.clear();
            return;
        }
        self.forward.successors_into(node, out);
    }

    /// Count of nodes reachable from `node` (including itself).
    pub fn successor_count(&self, node: NodeId) -> usize {
        if node.index() >= self.nodes {
            return 0;
        }
        self.forward.successor_count(node)
    }

    /// All nodes reaching `node` (including itself), ascending by node id.
    /// Bidirectional backends decode the reverse plane (O(k)); single
    /// backends stab the forward plane's inverted index (O(k log m)).
    pub fn predecessors(&self, node: NodeId) -> Vec<NodeId> {
        if node.index() >= self.nodes {
            return Vec::new();
        }
        match &self.reverse {
            Some(rev) => {
                let mut out = rev.successors(node);
                out.sort_unstable();
                out
            }
            None => self.forward.predecessors(node),
        }
    }

    /// [`ServiceSnapshot::predecessors`] into caller-provided buffers (both
    /// cleared first): `scratch` holds raw stab results, `out` the sorted
    /// ids. With reused buffers the whole query allocates nothing.
    pub fn predecessors_into(&self, node: NodeId, scratch: &mut Vec<u32>, out: &mut Vec<NodeId>) {
        if node.index() >= self.nodes {
            out.clear();
            return;
        }
        match &self.reverse {
            Some(rev) => {
                rev.successors_into(node, out);
                out.sort_unstable();
            }
            None => self.forward.predecessors_into(node, scratch, out),
        }
    }

    /// Count of nodes reaching `node` (including itself).
    pub fn predecessor_count(&self, node: NodeId) -> usize {
        if node.index() >= self.nodes {
            return 0;
        }
        match &self.reverse {
            Some(rev) => rev.successor_count(node),
            None => self.forward.predecessors(node).len(),
        }
    }

    /// Recyclable planes: only resident arrays can seed the next freeze; a
    /// paged plane's storage is its file, reclaimed by its own `Drop`.
    fn into_planes(self) -> (Option<QueryPlane>, Option<QueryPlane>) {
        let forward = match self.forward {
            SnapshotPlane::Mem(p) => Some(p),
            SnapshotPlane::Paged(_) => None,
        };
        (forward, self.reverse)
    }
}

/// Writer-side queue: ops waiting to be applied, the submission counter
/// they were stamped with, and the shutdown latch.
struct QueueState {
    ops: VecDeque<ServiceOp>,
    submitted: u64,
    closed: bool,
}

/// Writer-side progress, updated after every publish.
struct PublishState {
    consumed: u64,
    applied: u64,
    skipped: u64,
    publishes: u64,
    violation: Option<String>,
}

struct Shared {
    /// Version of the snapshot currently in `slot`; bumped with `Release`
    /// after the slot is swapped, so a reader whose `Acquire` load sees
    /// version v finds a snapshot at least that new under the mutex.
    epoch: AtomicU64,
    /// Total ops submitted; mirrors `QueueState::submitted` for lock-free
    /// staleness reads.
    submitted: AtomicU64,
    /// The swap cell: current published snapshot. Readers lock it only on
    /// an epoch change, and only long enough to clone the `Arc`.
    slot: Mutex<Arc<ServiceSnapshot>>,
    queue: Mutex<QueueState>,
    /// Signals the writer that ops arrived (or shutdown was requested).
    work: Condvar,
    published: Mutex<PublishState>,
    /// Signals flushers that `PublishState::consumed` advanced.
    published_cv: Condvar,
}

/// A concurrent serving layer over a compressed closure: any number of
/// lock-free snapshot readers, one background writer applying batched §4
/// updates and republishing frozen [`QueryPlane`]s. See the module docs
/// for the design.
///
/// ```
/// use tc_graph::{DiGraph, NodeId};
/// use tc_core::serve::{ClosureService, ServiceConfig, ServiceOp};
/// use tc_core::CompressedClosure;
///
/// let g = DiGraph::from_edges([(0, 1), (1, 2)]);
/// let closure = CompressedClosure::build(&g).unwrap();
/// let service = ClosureService::start(closure, ServiceConfig::new());
///
/// let mut reader = service.reader();
/// assert!(reader.reaches(NodeId(0), NodeId(2)));
///
/// service.submit(ServiceOp::AddEdge { src: NodeId(2), dst: NodeId(0) }).unwrap(); // cycle: skipped
/// service.submit(ServiceOp::AddNode { parents: vec![NodeId(2)] }).unwrap();
/// let stats = service.flush();
/// assert_eq!((stats.applied, stats.skipped), (1, 1));
/// assert!(reader.reaches(NodeId(0), NodeId(3)));
///
/// let (_, backend) = service.shutdown();
/// assert_eq!(backend.into_single().unwrap().node_count(), 4);
/// ```
pub struct ClosureService {
    shared: Arc<Shared>,
    writer: Option<JoinHandle<ServiceBackend>>,
}

impl ClosureService {
    /// Starts serving a single-direction closure. The initial snapshot is
    /// frozen synchronously, so readers always have something to pin.
    pub fn start(closure: CompressedClosure, config: ServiceConfig) -> ClosureService {
        Self::start_backend(ServiceBackend::Single(Box::new(closure)), config)
    }

    /// Starts serving a bidirectional closure; snapshots then carry a
    /// reverse plane and `predecessors` decodes instead of stabbing.
    pub fn start_bidir(bi: BiClosure, config: ServiceConfig) -> ClosureService {
        Self::start_backend(ServiceBackend::Bidirectional(Box::new(bi)), config)
    }

    fn start_backend(backend: ServiceBackend, config: ServiceConfig) -> ClosureService {
        let mut forward_scratch = FreezeScratch::default();
        let mut reverse_scratch = FreezeScratch::default();
        let initial =
            Arc::new(backend.freeze_snapshot(0, 1, &mut forward_scratch, &mut reverse_scratch));
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(1),
            submitted: AtomicU64::new(0),
            slot: Mutex::new(initial),
            queue: Mutex::new(QueueState {
                ops: VecDeque::new(),
                submitted: 0,
                closed: false,
            }),
            work: Condvar::new(),
            published: Mutex::new(PublishState {
                consumed: 0,
                applied: 0,
                skipped: 0,
                publishes: 1,
                violation: None,
            }),
            published_cv: Condvar::new(),
        });
        let writer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tc-serve-writer".into())
                .spawn(move || writer_loop(shared, backend, config, forward_scratch, reverse_scratch))
                .expect("spawn service writer thread")
        };
        ClosureService { shared, writer: Some(writer) }
    }

    /// A new reader pinned to the current snapshot. Readers are `Clone`
    /// and independent; hand one to each querying thread.
    pub fn reader(&self) -> ServiceReader {
        let cached = Arc::clone(&self.shared.slot.lock().expect("swap cell poisoned"));
        let epoch = cached.version;
        ServiceReader { shared: Arc::clone(&self.shared), cached, epoch }
    }

    /// Enqueues one op; returns its sequence number (1-based position in
    /// the submission order). Never blocks on the writer. Once the service
    /// is [closed](ClosureService::close), returns [`ServiceClosed`]
    /// instead: an accepted op is always eventually consumed (applied or
    /// skipped, with exact accounting), a rejected one is observably never
    /// enqueued — there is no silent-drop window between the two.
    pub fn submit(&self, op: ServiceOp) -> Result<u64, ServiceClosed> {
        let seq = {
            let mut q = self.shared.queue.lock().expect("queue poisoned");
            if q.closed {
                return Err(ServiceClosed);
            }
            q.ops.push_back(op);
            q.submitted += 1;
            self.shared.submitted.store(q.submitted, Ordering::Release);
            q.submitted
        };
        self.shared.work.notify_one();
        Ok(seq)
    }

    /// Enqueues a batch of ops under one queue lock; returns the sequence
    /// number of the last one (0 if `ops` was empty). All-or-nothing under
    /// a close race: either every op of the batch is accepted or none is.
    pub fn submit_batch(
        &self,
        ops: impl IntoIterator<Item = ServiceOp>,
    ) -> Result<u64, ServiceClosed> {
        let seq = {
            let mut q = self.shared.queue.lock().expect("queue poisoned");
            if q.closed {
                return Err(ServiceClosed);
            }
            let before = q.ops.len();
            q.ops.extend(ops);
            q.submitted += (q.ops.len() - before) as u64;
            self.shared.submitted.store(q.submitted, Ordering::Release);
            q.submitted
        };
        self.shared.work.notify_one();
        Ok(seq)
    }

    /// Closes the submission queue: every later [`ClosureService::submit`]
    /// returns [`ServiceClosed`], while everything accepted before the
    /// close is still drained, applied and published. Idempotent, and safe
    /// to call from any thread — the handle stays usable for `flush`,
    /// `stats`, readers, and the final [`ClosureService::shutdown`].
    pub fn close(&self) {
        {
            let mut q = self.shared.queue.lock().expect("queue poisoned");
            q.closed = true;
        }
        self.shared.work.notify_all();
    }

    /// Blocks until every op submitted so far is covered by a published
    /// snapshot, then returns the stats at that point.
    pub fn flush(&self) -> ServiceStats {
        let target = self.shared.submitted.load(Ordering::Acquire);
        let mut p = self.shared.published.lock().expect("publish state poisoned");
        while p.consumed < target {
            p = self.shared.published_cv.wait(p).expect("publish state poisoned");
        }
        self.stats_locked(&p)
    }

    /// Current progress counters (non-blocking).
    pub fn stats(&self) -> ServiceStats {
        let p = self.shared.published.lock().expect("publish state poisoned");
        self.stats_locked(&p)
    }

    fn stats_locked(&self, p: &PublishState) -> ServiceStats {
        ServiceStats {
            submitted: self.shared.submitted.load(Ordering::Acquire),
            consumed: p.consumed,
            applied: p.applied,
            skipped: p.skipped,
            publishes: p.publishes,
            audit_violation: p.violation.clone(),
        }
    }

    /// Drains the queue, stops the writer, and hands the mutable backend
    /// back along with the final stats. Outstanding readers keep their
    /// pinned snapshots and stay fully usable.
    pub fn shutdown(mut self) -> (ServiceStats, ServiceBackend) {
        self.close();
        let backend = self
            .writer
            .take()
            .expect("writer joined twice")
            .join()
            .expect("service writer panicked");
        (self.stats(), backend)
    }
}

impl Drop for ClosureService {
    fn drop(&mut self) {
        if let Some(handle) = self.writer.take() {
            if let Ok(mut q) = self.shared.queue.lock() {
                q.closed = true;
            }
            self.shared.work.notify_all();
            let _ = handle.join();
        }
    }
}

/// A per-thread query handle: caches the current snapshot `Arc` and
/// revalidates it with one atomic epoch load per probe. While the epoch is
/// unchanged — the overwhelmingly common case — probes take zero locks and
/// allocate nothing beyond their own result.
pub struct ServiceReader {
    shared: Arc<Shared>,
    cached: Arc<ServiceSnapshot>,
    epoch: u64,
}

impl Clone for ServiceReader {
    fn clone(&self) -> Self {
        ServiceReader {
            shared: Arc::clone(&self.shared),
            cached: Arc::clone(&self.cached),
            epoch: self.epoch,
        }
    }
}

impl ServiceReader {
    /// Revalidates the cached snapshot (one `Acquire` epoch load; the swap
    /// cell mutex is taken only when the epoch moved) and returns it.
    #[inline]
    pub fn refresh(&mut self) -> &ServiceSnapshot {
        let current = self.shared.epoch.load(Ordering::Acquire);
        if current != self.epoch {
            let snap = Arc::clone(&self.shared.slot.lock().expect("swap cell poisoned"));
            self.epoch = snap.version;
            self.cached = snap;
        }
        &self.cached
    }

    /// Pins and returns the freshest published snapshot. The returned
    /// `Arc` stays valid (and immutable) however far the service moves on.
    pub fn snapshot(&mut self) -> Arc<ServiceSnapshot> {
        self.refresh();
        Arc::clone(&self.cached)
    }

    /// Whether `src` reaches `dst` on the freshest published snapshot.
    #[inline]
    pub fn reaches(&mut self, src: NodeId, dst: NodeId) -> bool {
        self.refresh().reaches(src, dst)
    }

    /// Batch reachability on one consistent snapshot (refreshed once for
    /// the whole batch).
    pub fn reaches_batch(&mut self, pairs: &[(NodeId, NodeId)]) -> Vec<bool> {
        self.refresh().reaches_batch(pairs)
    }

    /// Successor set on the freshest published snapshot.
    pub fn successors(&mut self, node: NodeId) -> Vec<NodeId> {
        self.refresh().successors(node)
    }

    /// Predecessor set on the freshest published snapshot.
    pub fn predecessors(&mut self, node: NodeId) -> Vec<NodeId> {
        self.refresh().predecessors(node)
    }

    /// Ops submitted to the service but not reflected in the snapshot this
    /// reader currently holds — how far behind head the *next* probe may
    /// answer.
    pub fn staleness(&self) -> u64 {
        self.shared
            .submitted
            .load(Ordering::Acquire)
            .saturating_sub(self.cached.applied_seq)
    }
}

fn writer_loop(
    shared: Arc<Shared>,
    mut backend: ServiceBackend,
    config: ServiceConfig,
    mut forward_scratch: FreezeScratch,
    mut reverse_scratch: FreezeScratch,
) -> ServiceBackend {
    let mut consumed = 0u64;
    let mut version = 1u64;
    let mut batch: Vec<ServiceOp> = Vec::new();
    loop {
        batch.clear();
        {
            let mut q = shared.queue.lock().expect("queue poisoned");
            while q.ops.is_empty() && !q.closed {
                q = shared.work.wait(q).expect("queue poisoned");
            }
            if q.ops.is_empty() {
                break; // closed and drained
            }
            let take = q.ops.len().min(config.batch_max.max(1));
            batch.extend(q.ops.drain(..take));
        }
        let mut applied = 0u64;
        let mut skipped = 0u64;
        for op in &batch {
            // A rejected op (unknown node, cycle, exhausted reserve, ...)
            // is counted and skipped; the consumed prefix stays a pure
            // function of the submission order either way.
            match backend.apply(op) {
                Ok(()) => applied += 1,
                Err(_) => skipped += 1,
            }
        }
        consumed += batch.len() as u64;
        let violation = if config.audit { backend.audit().err() } else { None };
        version += 1;
        let snap = Arc::new(backend.freeze_snapshot(
            consumed,
            version,
            &mut forward_scratch,
            &mut reverse_scratch,
        ));
        let retired = {
            let mut slot = shared.slot.lock().expect("swap cell poisoned");
            std::mem::replace(&mut *slot, snap)
        };
        // Publish: the Release store pairs with readers' Acquire loads, so
        // any reader that observes the new version also observes the swap
        // above when it takes the cell mutex.
        shared.epoch.store(version, Ordering::Release);
        // Opportunistic plane reuse: when no reader still pins the retired
        // snapshot, its arrays seed the next freeze.
        if let Ok(old) = Arc::try_unwrap(retired) {
            let (forward, reverse) = old.into_planes();
            if let Some(forward) = forward {
                forward_scratch.retire(forward);
            }
            if let Some(reverse) = reverse {
                reverse_scratch.retire(reverse);
            }
        }
        {
            let mut p = shared.published.lock().expect("publish state poisoned");
            p.consumed = consumed;
            p.applied += applied;
            p.skipped += skipped;
            p.publishes = version;
            if p.violation.is_none() {
                p.violation = violation;
            }
        }
        shared.published_cv.notify_all();
    }
    backend
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClosureConfig;
    use tc_graph::{generators, DiGraph};

    fn dag(nodes: usize, seed: u64) -> DiGraph {
        generators::random_dag(generators::RandomDagConfig {
            nodes,
            avg_out_degree: 2.0,
            seed,
        })
    }

    #[test]
    fn snapshot_answers_match_the_closure() {
        let g = dag(60, 3);
        let closure = CompressedClosure::build(&g).unwrap();
        let oracle = closure.clone();
        let service = ClosureService::start(closure, ServiceConfig::new().audit(true));
        let mut reader = service.reader();
        for u in g.nodes() {
            assert_eq!(reader.successors(u), oracle.successors(u), "successors({u:?})");
            assert_eq!(reader.predecessors(u), oracle.predecessors(u), "predecessors({u:?})");
            for v in g.nodes().step_by(7) {
                assert_eq!(reader.reaches(u, v), oracle.reaches(u, v), "reaches({u:?},{v:?})");
            }
        }
        let (stats, backend) = service.shutdown();
        assert_eq!(stats.publishes, 1, "no writes, no republishing");
        assert_eq!(stats.audit_violation, None);
        backend.into_single().unwrap().verify().unwrap();
    }

    #[test]
    fn writes_apply_in_order_and_publish() {
        let g = DiGraph::from_edges([(0, 1), (1, 2)]);
        let closure = CompressedClosure::build(&g).unwrap();
        let service = ClosureService::start(closure, ServiceConfig::new().audit(true));
        let mut reader = service.reader();
        assert!(!reader.reaches(NodeId(0), NodeId(3)));

        let s1 = service.submit(ServiceOp::AddNode { parents: vec![NodeId(2)] }).unwrap();
        let s2 = service.submit(ServiceOp::AddEdge { src: NodeId(3), dst: NodeId(0) }).unwrap(); // cycle
        let s3 = service.submit(ServiceOp::RemoveEdge { src: NodeId(0), dst: NodeId(9) }).unwrap(); // no such
        assert_eq!((s1, s2, s3), (1, 2, 3));
        let stats = service.flush();
        assert_eq!(stats.consumed, 3);
        assert_eq!(stats.applied, 1);
        assert_eq!(stats.skipped, 2);
        assert_eq!(stats.staleness(), 0);
        assert_eq!(stats.audit_violation, None);

        assert!(reader.reaches(NodeId(0), NodeId(3)));
        let snap = reader.snapshot();
        assert_eq!(snap.applied_seq(), 3);
        assert_eq!(snap.node_count(), 4);
        assert_eq!(reader.staleness(), 0);

        let (_, backend) = service.shutdown();
        let closure = backend.into_single().unwrap();
        closure.verify().unwrap();
        assert_eq!(closure.node_count(), 4);
    }

    #[test]
    fn submit_racing_close_is_applied_or_rejected_never_lost() {
        let g = DiGraph::from_edges([(0, 1)]);
        let closure = CompressedClosure::build(&g).unwrap();
        let service = ClosureService::start(closure, ServiceConfig::new().audit(true));
        let accepted = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..200 {
                        match service.submit(ServiceOp::AddNode { parents: vec![NodeId(1)] }) {
                            Ok(_) => {
                                accepted.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ServiceClosed) => break,
                        }
                        std::thread::yield_now();
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
            service.close();
        });
        let ok = accepted.load(Ordering::Relaxed);
        service.close(); // idempotent
        assert_eq!(service.submit(ServiceOp::Relabel), Err(ServiceClosed));
        assert_eq!(service.submit_batch([ServiceOp::Relabel]), Err(ServiceClosed));
        let (stats, backend) = service.shutdown();
        // Exact accounting: every Ok(seq) was enqueued and drained; every
        // Err(ServiceClosed) never touched the queue. Nothing in between.
        assert_eq!(stats.submitted, ok, "submitted must equal the Ok count");
        assert_eq!(stats.consumed, stats.submitted, "accepted ops are never dropped");
        assert_eq!(stats.applied + stats.skipped, stats.consumed);
        assert_eq!(stats.staleness(), 0);
        assert_eq!(stats.audit_violation, None);
        let closure = backend.into_single().unwrap();
        closure.verify().unwrap();
        assert_eq!(closure.node_count() as u64, 2 + stats.applied);
    }

    #[test]
    fn pinned_snapshots_survive_later_writes() {
        let g = DiGraph::from_edges([(0, 1)]);
        let service =
            CompressedClosure::build(&g).map(|c| ClosureService::start(c, ServiceConfig::new())).unwrap();
        let mut reader = service.reader();
        let old = reader.snapshot();
        for _ in 0..10 {
            service.submit(ServiceOp::AddNode { parents: vec![NodeId(0)] }).unwrap();
        }
        service.flush();
        // The pinned snapshot still answers from its original prefix.
        assert_eq!(old.node_count(), 2);
        assert!(!old.reaches(NodeId(0), NodeId(5)));
        // A refreshed probe sees the new nodes.
        assert!(reader.reaches(NodeId(0), NodeId(5)));
        assert!(reader.snapshot().node_count() == 12);
    }

    #[test]
    fn refine_and_structural_ops_flow_through() {
        let g = DiGraph::from_edges([(0, 2), (1, 2), (2, 3)]);
        let closure = ClosureConfig::new().gap(32).reserve(4).build(&g).unwrap();
        let service = ClosureService::start(closure, ServiceConfig::new().audit(true));
        service.submit(ServiceOp::Refine { child: NodeId(2) }).unwrap();
        service.submit(ServiceOp::Relabel).unwrap();
        service.submit(ServiceOp::RemoveNode { node: NodeId(0) }).unwrap();
        service.submit(ServiceOp::Rebuild).unwrap();
        let stats = service.flush();
        assert_eq!(stats.applied, 4);
        assert_eq!(stats.audit_violation, None);
        let mut reader = service.reader();
        // The refinement node (id 4) still reaches 2 and 3 after all that.
        assert!(reader.reaches(NodeId(4), NodeId(3)));
        assert!(!reader.reaches(NodeId(0), NodeId(2)), "node 0 removed");
        let (_, backend) = service.shutdown();
        backend.into_single().unwrap().verify().unwrap();
    }

    #[test]
    fn paged_backend_publishes_out_of_core_snapshots() {
        let g = dag(60, 5);
        // Pool of 2 frames: almost every probe faults pages in, so the
        // paged path is genuinely exercised, not just resident-cached.
        let closure = ClosureConfig::new().paged(2).build(&g).unwrap();
        let oracle = CompressedClosure::build(&g).unwrap();
        let service = ClosureService::start(closure, ServiceConfig::new().audit(true));
        let mut reader = service.reader();
        assert!(reader.snapshot().is_paged(), "initial snapshot must be paged");
        for u in g.nodes() {
            assert_eq!(reader.successors(u), oracle.successors(u), "successors({u:?})");
            assert_eq!(reader.predecessors(u), oracle.predecessors(u), "predecessors({u:?})");
            for v in g.nodes().step_by(9) {
                assert_eq!(reader.reaches(u, v), oracle.reaches(u, v), "reaches({u:?},{v:?})");
            }
        }
        // Writes republish fresh paged snapshots.
        service.submit(ServiceOp::AddNode { parents: vec![NodeId(0)] }).unwrap();
        let stats = service.flush();
        assert_eq!((stats.applied, stats.skipped), (1, 0));
        assert_eq!(stats.audit_violation, None);
        let snap = reader.snapshot();
        assert!(snap.is_paged(), "republished snapshot must stay paged");
        assert!(snap.reaches(NodeId(0), NodeId(60)));
        let (_, backend) = service.shutdown();
        backend.into_single().unwrap().verify().unwrap();
    }

    #[test]
    fn capture_pins_a_frozen_paged_plane_without_refreezing() {
        let g = dag(40, 11);
        let mut closure = ClosureConfig::new().paged(4).build(&g).unwrap();
        closure.freeze();
        let snap = ServiceSnapshot::capture(&closure);
        assert!(snap.is_paged());
        let oracle = CompressedClosure::build(&g).unwrap();
        for u in g.nodes() {
            assert_eq!(snap.successors(u), oracle.successors(u), "successors({u:?})");
        }
    }

    #[test]
    fn bidir_service_serves_predecessors_from_reverse_plane() {
        let g = dag(50, 8);
        let bi = BiClosure::build(&g).unwrap();
        let oracle = bi.clone();
        let service = ClosureService::start_bidir(bi, ServiceConfig::new().audit(true));
        let mut reader = service.reader();
        for v in g.nodes() {
            let mut want = oracle.predecessors(v);
            want.sort_unstable();
            assert_eq!(reader.predecessors(v), want, "predecessors({v:?})");
            assert_eq!(
                reader.refresh().predecessor_count(v),
                want.len(),
                "predecessor_count({v:?})"
            );
        }
        service.submit(ServiceOp::AddNode { parents: vec![NodeId(0), NodeId(1)] }).unwrap();
        service.flush();
        let n = NodeId(50);
        assert!(reader.predecessors(n).contains(&NodeId(0)));
        let (stats, backend) = service.shutdown();
        assert_eq!(stats.audit_violation, None);
        backend.into_bidirectional().unwrap().verify().unwrap();
    }

    #[test]
    fn concurrent_readers_and_writer_stay_consistent() {
        // A smoke-scale version of the full stress test in tests/: readers
        // hammer reflexive probes (true on every prefix) while the writer
        // grows a chain, then everything converges after flush.
        let g = DiGraph::from_edges([(0, 1)]);
        let closure = CompressedClosure::build(&g).unwrap();
        let service = ClosureService::start(closure, ServiceConfig::new().batch_max(4).audit(true));
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let mut reader = service.reader();
                let stop = &stop;
                scope.spawn(move || {
                    let mut probes = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = reader.snapshot();
                        let n = snap.node_count() as u32;
                        for v in 0..n.min(16) {
                            assert!(snap.reaches(NodeId(v), NodeId(v)), "reflexivity");
                        }
                        assert!(snap.reaches(NodeId(0), NodeId(1)), "never deleted");
                        probes += 1;
                    }
                    probes
                });
            }
            let mut tip = NodeId(1);
            for i in 0..64 {
                let seq = service.submit(ServiceOp::AddNode { parents: vec![tip] }).unwrap();
                tip = NodeId(2 + i);
                assert_eq!(seq, (i + 1) as u64);
            }
            let stats = service.flush();
            assert_eq!(stats.consumed, 64);
            assert_eq!(stats.audit_violation, None);
            stop.store(true, Ordering::Relaxed);
        });
        let mut reader = service.reader();
        assert!(reader.reaches(NodeId(0), NodeId(65)));
        let (_, backend) = service.shutdown();
        backend.into_single().unwrap().verify().unwrap();
    }
}
