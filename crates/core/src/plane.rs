//! The frozen query plane: an immutable, read-optimized snapshot of a
//! closure's labels (DESIGN.md, "Frozen query plane").
//!
//! The mutable closure keeps one heap-allocated `Vec<Interval>` per node so
//! the §4 updates can grow any label independently; every `reaches` probe
//! pays two dependent pointer dereferences (outer `Vec<IntervalSet>` header,
//! then the set's buffer) plus a binary search over 16-byte `(lo, hi)`
//! pairs in the sparse `u64` postorder-number space, and `predecessors` has
//! no choice but to ask all n sets in turn. [`QueryPlane`] trades the
//! mutability away. [`crate::CompressedClosure::freeze`] *rank compresses*
//! the label state — every interval endpoint is replaced by its index in
//! the sorted array of live postorder numbers — and lays it out as:
//!
//! * a CSR [`FlatIntervalIndex`]: each node's rank intervals packed one per
//!   `u64` (`lo` in the high half, `hi` in the low half), so a point probe
//!   is a single binary search whose final load already holds both
//!   endpoints. Rank compression also merges intervals separated only by
//!   dead numbers (gap slack, tombstones, refinement tails), shrinking the
//!   rows well below the mutable interval count;
//! * the rank of each node's own postorder number (the probe key);
//! * a [`StabbingIndex`] inverting the closure: all rank intervals sorted
//!   globally by `lo` with owner ids, answering `predecessors` as an
//!   O(k log m) stabbing query instead of an O(n log k) scan;
//! * the live node at each rank, making `successors` a direct slice copy
//!   per interval — no number-line search at all.
//!
//! The plane is a *snapshot*: any §4 update invalidates it (the closure
//! drops it and answers from the mutable labels again) until the caller —
//! or [`crate::ClosureConfig::auto_freeze`] — freezes anew.

use tc_graph::NodeId;
use tc_interval::{
    upper_bound, FlatBuilder, FlatIntervalIndex, NarrowBuilder, NarrowIntervalIndex, StabbingIndex,
};

use crate::labeling::Labeling;

/// The per-node rank-interval rows in whichever key width the snapshot
/// fits: `u16` ranks (single-cache-line headers, half-size slices) whenever
/// the live number line has at most `u16::MAX` entries, `u32` otherwise.
/// Every probe takes the same branch, so the dispatch is free in practice.
#[derive(Debug, Clone)]
enum RankRows {
    Wide(FlatIntervalIndex),
    Narrow(NarrowIntervalIndex),
}

/// Accepts `u32` rank intervals row by row; lets the freeze mapping loop be
/// written once for both builder widths.
trait RowSink {
    fn add(&mut self, lo: u32, hi: u32);
    fn seal(&mut self);
}

impl RowSink for FlatBuilder {
    #[inline]
    fn add(&mut self, lo: u32, hi: u32) {
        self.push(lo, hi);
    }
    fn seal(&mut self) {
        self.finish_row();
    }
}

impl RowSink for NarrowBuilder {
    #[inline]
    fn add(&mut self, lo: u32, hi: u32) {
        // The freeze gate guarantees every rank fits: live count <= u16::MAX.
        self.push(lo as u16, hi as u16);
    }
    fn seal(&mut self) {
        self.finish_row();
    }
}

impl RankRows {
    fn rows(&self) -> usize {
        match self {
            RankRows::Wide(ix) => ix.rows(),
            RankRows::Narrow(ix) => ix.rows(),
        }
    }

    fn total_intervals(&self) -> usize {
        match self {
            RankRows::Wide(ix) => ix.total_intervals(),
            RankRows::Narrow(ix) => ix.total_intervals(),
        }
    }

    #[inline]
    fn contains(&self, row: usize, t: u32) -> bool {
        match self {
            RankRows::Wide(ix) => ix.contains_point(row, t),
            RankRows::Narrow(ix) => ix.contains_point(row, t as u16),
        }
    }

    /// Calls `f` with each of `row`'s `(lo, hi)` rank intervals, ascending.
    fn for_each_interval(&self, row: usize, mut f: impl FnMut(u32, u32)) {
        match self {
            RankRows::Wide(ix) => ix.row_intervals(row).for_each(|(lo, hi)| f(lo, hi)),
            RankRows::Narrow(ix) => {
                ix.row_intervals(row).for_each(|(lo, hi)| f(lo as u32, hi as u32));
            }
        }
    }
}

/// An immutable, cache-friendly snapshot of a closure's query state. Built
/// by [`crate::CompressedClosure::freeze`]; answers `reaches`,
/// `successors`, `successor_count`, and `predecessors` without touching the
/// mutable label structures.
#[derive(Debug, Clone)]
pub struct QueryPlane {
    /// Per-node rank-interval sets in flat boundary-array layout.
    index: RankRows,
    /// Rank of each node's own postorder number in the live number line —
    /// the probe key for `reaches(_, dst)` and `predecessors(dst)`.
    rank: Vec<u32>,
    /// Inverted index: every rank interval with its owning node.
    inverted: StabbingIndex,
    /// Live node at each rank (the number line with the numbers compressed
    /// away): decoding a rank interval is a slice copy.
    line_nodes: Vec<u32>,
    /// The labeling's interval count at freeze time, *before* rank merging;
    /// the consistency audit compares it against the live labeling to catch
    /// updates that forgot to invalidate the plane.
    source_intervals: usize,
}

/// Reusable freeze-time buffers, plus (optionally) a retired snapshot whose
/// heap allocations the next freeze absorbs. A caller that refreezes
/// repeatedly — the serving layer republishing after every write batch —
/// keeps one scratch alive so each snapshot is built into already-sized
/// arrays instead of growing fresh ones.
#[derive(Debug, Default)]
pub(crate) struct FreezeScratch {
    /// Sorted live postorder numbers; needed only while mapping interval
    /// endpoints to ranks, never kept in the finished plane.
    line_nums: Vec<u64>,
    /// Staging for the inverted index's `(lo, hi, owner)` triples.
    inverted_items: Vec<(u32, u32, u32)>,
    /// A retired snapshot whose rank array, line array, row index, and
    /// stabbing index are recycled (when the key widths line up).
    retired: Option<QueryPlane>,
}

impl FreezeScratch {
    /// Hands a retired snapshot's buffers to the next freeze. Only useful
    /// when the caller uniquely owns the plane — a snapshot still shared
    /// with readers must simply be dropped.
    pub(crate) fn retire(&mut self, plane: QueryPlane) {
        self.retired = Some(plane);
    }
}

impl QueryPlane {
    /// Snapshots the given labeling, rank-compressing every interval.
    pub(crate) fn freeze(lab: &Labeling) -> QueryPlane {
        Self::freeze_impl(lab, false, &mut FreezeScratch::default())
    }

    /// As [`QueryPlane::freeze`], but building into (and reclaiming) the
    /// caller's [`FreezeScratch`] so repeated freezes reuse allocations.
    pub(crate) fn freeze_with(lab: &Labeling, scratch: &mut FreezeScratch) -> QueryPlane {
        Self::freeze_impl(lab, false, scratch)
    }

    /// As [`QueryPlane::freeze`], but forcing the wide (`u32`) row layout
    /// even when the snapshot would fit the narrow one — lets tests compare
    /// both layouts on the small graphs they can afford.
    #[cfg(test)]
    pub(crate) fn freeze_wide(lab: &Labeling) -> QueryPlane {
        Self::freeze_impl(lab, true, &mut FreezeScratch::default())
    }

    fn freeze_impl(lab: &Labeling, force_wide: bool, scratch: &mut FreezeScratch) -> QueryPlane {
        let n = lab.post.len();
        let FreezeScratch { line_nums, inverted_items, retired } = scratch;
        let (mut rank, mut line_nodes, retired_rows, retired_stab) = match retired.take() {
            Some(QueryPlane { index, rank, inverted, line_nodes, .. }) => {
                (rank, line_nodes, Some(index), Some(inverted))
            }
            None => (Vec::new(), Vec::new(), None, None),
        };
        // The live number line, split into its two halves: the sorted
        // numbers (only needed during freezing, to map endpoints to ranks)
        // and the node at each rank (kept for successor decoding).
        let live = lab.line.live_count();
        line_nums.clear();
        line_nums.reserve(live);
        line_nodes.clear();
        line_nodes.reserve(live);
        for (num, node) in lab.line.live_in_range(0, u64::MAX) {
            line_nums.push(num);
            line_nodes.push(node);
        }
        // Every node's own number is live, so the rank array is total.
        rank.clear();
        rank.resize(n, 0u32);
        for (r, &node) in line_nodes.iter().enumerate() {
            rank[node as usize] = r as u32;
        }

        let source_intervals: usize = lab.sets.iter().map(|s| s.count()).sum();
        // Maps every label interval onto rank space and feeds the sink.
        // First rank at or above lo / last rank at or below hi; an interval
        // covering only dead numbers maps to nothing and is dropped —
        // every query key is a live number.
        let feed = |sink: &mut dyn RowSink| {
            for set in lab.sets.iter() {
                for iv in set.iter() {
                    let rlo = line_nums.partition_point(|&x| x < iv.lo());
                    let rhi = upper_bound(line_nums, iv.hi());
                    if rlo >= rhi {
                        continue;
                    }
                    sink.add(rlo as u32, (rhi - 1) as u32);
                }
                sink.seal();
            }
        };
        let index = if live <= u16::MAX as usize && !force_wide {
            let mut builder = match retired_rows {
                Some(RankRows::Narrow(ix)) => NarrowBuilder::recycle(ix),
                _ => NarrowBuilder::with_capacity(n, source_intervals),
            };
            feed(&mut builder);
            RankRows::Narrow(builder.finish())
        } else {
            let mut builder = match retired_rows {
                Some(RankRows::Wide(ix)) => FlatBuilder::recycle(ix),
                _ => FlatBuilder::with_capacity(n, source_intervals),
            };
            feed(&mut builder);
            RankRows::Wide(builder.finish())
        };
        // Invert the *merged* rows, not the raw sets: fewer intervals, and
        // per-owner disjointness makes stab results duplicate-free.
        inverted_items.clear();
        inverted_items.reserve(source_intervals);
        for owner in 0..n {
            index.for_each_interval(owner, |rlo, rhi| {
                inverted_items.push((rlo, rhi, owner as u32));
            });
        }
        let inverted = retired_stab.unwrap_or_default().rebuild(inverted_items);

        QueryPlane { index, rank, inverted, line_nodes, source_intervals }
    }

    /// Number of nodes in the snapshot.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.rank.len()
    }

    /// Total rank intervals in the snapshot. At most the mutable closure's
    /// [`crate::CompressedClosure::total_intervals`] at freeze time —
    /// usually well below it, since rank compression merges intervals
    /// separated only by dead numbers.
    #[inline]
    pub fn total_intervals(&self) -> usize {
        self.index.total_intervals()
    }

    /// Whether `src` reaches `dst` (reflexive): one fenced parity probe of
    /// `src`'s boundary-array row for `dst`'s rank.
    #[inline]
    pub fn reaches(&self, src: NodeId, dst: NodeId) -> bool {
        self.index.contains(src.index(), self.rank[dst.index()])
    }

    /// All nodes reachable from `node` (including itself), ascending by
    /// postorder number — identical to the mutable decode. Rank intervals
    /// are disjoint and sorted, so each one is a straight slice copy.
    pub fn successors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.successor_count(node));
        self.successors_into(node, &mut out);
        out
    }

    /// [`QueryPlane::successors`] into a caller-provided buffer (cleared
    /// first): with a reused buffer the decode allocates nothing, which is
    /// what the sharded scatter-gather merge path leans on.
    pub fn successors_into(&self, node: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        self.index.for_each_interval(node.index(), |rlo, rhi| {
            let nodes = &self.line_nodes[rlo as usize..=rhi as usize];
            out.extend(nodes.iter().map(|&n| NodeId(n)));
        });
    }

    /// Count of nodes reachable from `node` (including itself), without
    /// materializing the list: a sum of interval widths.
    pub fn successor_count(&self, node: NodeId) -> usize {
        let mut count = 0usize;
        self.index.for_each_interval(node.index(), |rlo, rhi| {
            count += (rhi - rlo) as usize + 1;
        });
        count
    }

    /// All nodes that reach `node` (including itself), ascending by node
    /// id — identical order to the mutable scan. One stabbing query for
    /// `node`'s rank over the inverted index: O(k log m) for k
    /// predecessors among m total intervals.
    pub fn predecessors(&self, node: NodeId) -> Vec<NodeId> {
        let mut owners = Vec::new();
        let mut out = Vec::new();
        self.predecessors_into(node, &mut owners, &mut out);
        out
    }

    /// [`QueryPlane::predecessors`] into caller-provided buffers (both
    /// cleared first): `scratch` receives the raw stab results, `out` the
    /// sorted ids. With reused buffers the whole query allocates nothing.
    pub fn predecessors_into(&self, node: NodeId, scratch: &mut Vec<u32>, out: &mut Vec<NodeId>) {
        scratch.clear();
        self.inverted.stab(self.rank[node.index()], scratch);
        // A row's merged intervals are disjoint, so each owner appears at
        // most once — sorting alone restores id order.
        scratch.sort_unstable();
        out.clear();
        out.extend(scratch.iter().map(|&n| NodeId(n)));
    }

    /// Cross-checks the snapshot against the labeling it should mirror —
    /// shape, source interval count, and the full rank bijection. O(n +
    /// intervals); run by [`crate::CompressedClosure::audit`] whenever a
    /// plane is frozen, so the fuzzer catches a stale or torn snapshot
    /// immediately.
    pub(crate) fn check_consistency(&self, lab: &Labeling) -> Result<(), String> {
        if self.rank.len() != lab.post.len() || self.index.rows() != lab.post.len() {
            return Err(format!(
                "plane shape mismatch: {} ranks / {} rows for {} nodes",
                self.rank.len(),
                self.index.rows(),
                lab.post.len()
            ));
        }
        let total: usize = lab.sets.iter().map(|s| s.count()).sum();
        if self.source_intervals != total {
            return Err(format!(
                "plane frozen from {} intervals but labeling now holds {total}",
                self.source_intervals
            ));
        }
        if self.index.total_intervals() > total || self.inverted.len() != self.index.total_intervals()
        {
            return Err(format!(
                "plane interval counts inconsistent: CSR {} (merged from {total}), inverted {}",
                self.index.total_intervals(),
                self.inverted.len()
            ));
        }
        if self.line_nodes.len() != lab.line.live_count() {
            return Err(format!(
                "plane line length {} != {} live numbers",
                self.line_nodes.len(),
                lab.line.live_count()
            ));
        }
        for (r, (num, node)) in lab.line.live_in_range(0, u64::MAX).enumerate() {
            if self.line_nodes[r] != node {
                return Err(format!("plane rank {r} holds node {}, line says {node}", {
                    self.line_nodes[r]
                }));
            }
            if lab.post[node as usize] == num && self.rank[node as usize] != r as u32 {
                return Err(format!(
                    "node {node} has rank {} in the plane but its number {num} sits at rank {r}",
                    self.rank[node as usize]
                ));
            }
        }
        Ok(())
    }
}
