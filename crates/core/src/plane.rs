//! The frozen query plane: an immutable, read-optimized snapshot of a
//! closure's labels (DESIGN.md, "Frozen query plane").
//!
//! The mutable closure keeps one heap-allocated `Vec<Interval>` per node so
//! the §4 updates can grow any label independently; every `reaches` probe
//! pays two dependent pointer dereferences (outer `Vec<IntervalSet>` header,
//! then the set's buffer) plus a binary search over 16-byte `(lo, hi)`
//! pairs in the sparse `u64` postorder-number space, and `predecessors` has
//! no choice but to ask all n sets in turn. [`QueryPlane`] trades the
//! mutability away. [`crate::CompressedClosure::freeze`] *rank compresses*
//! the label state — every interval endpoint is replaced by its index in
//! the sorted array of live postorder numbers — and lays it out as:
//!
//! * a CSR [`FlatIntervalIndex`]: each node's rank intervals packed one per
//!   `u64` (`lo` in the high half, `hi` in the low half), so a point probe
//!   is a single binary search whose final load already holds both
//!   endpoints. Rank compression also merges intervals separated only by
//!   dead numbers (gap slack, tombstones, refinement tails), shrinking the
//!   rows well below the mutable interval count;
//! * the rank of each node's own postorder number (the probe key);
//! * a [`StabbingIndex`] inverting the closure: all rank intervals sorted
//!   globally by `lo` with owner ids, answering `predecessors` as an
//!   O(k log m) stabbing query instead of an O(n log k) scan;
//! * the live node at each rank, making `successors` a direct slice copy
//!   per interval — no number-line search at all.
//!
//! The plane is a *snapshot*: any §4 update invalidates it (the closure
//! drops it and answers from the mutable labels again) until the caller —
//! or [`crate::ClosureConfig::auto_freeze`] — freezes anew.

use tc_graph::topo::CutoffLabels;
use tc_graph::{DiGraph, NodeId};
use tc_interval::{
    upper_bound, BitRows, BitRowsBuilder, FlatBuilder, FlatIntervalIndex, IntervalSet,
    NarrowBuilder, NarrowIntervalIndex, StabbingIndex,
};

use crate::labeling::Labeling;

/// Rank-compresses one label set into merged rank intervals: each endpoint
/// becomes its index in the sorted live-number array, and intervals left
/// adjacent or overlapping in rank space (separated only by dead numbers)
/// fuse — the exact merge rule of the flat-row builders, factored out so
/// the resident freeze, the streaming `PLN1` writer, and the hybrid row
/// selection all stage byte-identical geometry.
pub(crate) fn merged_row_into(line_nums: &[u64], set: &IntervalSet, out: &mut Vec<(u32, u32)>) {
    out.clear();
    for iv in set.iter() {
        let rlo = line_nums.partition_point(|&x| x < iv.lo());
        let rhi = upper_bound(line_nums, iv.hi());
        if rlo >= rhi {
            continue;
        }
        let (lo, hi) = (rlo as u32, (rhi - 1) as u32);
        if let Some(&mut (_, ref mut phi)) = out.last_mut() {
            if lo <= phi.saturating_add(1) {
                *phi = (*phi).max(hi);
                continue;
            }
        }
        out.push((lo, hi));
    }
}

/// The per-node rank-interval rows in whichever key width the snapshot
/// fits: `u16` ranks (single-cache-line headers, half-size slices) whenever
/// the live number line has at most `u16::MAX` entries, `u32` otherwise.
/// Every probe takes the same branch, so the dispatch is free in practice.
#[derive(Debug, Clone)]
enum RankRows {
    Wide(FlatIntervalIndex),
    Narrow(NarrowIntervalIndex),
}

/// Accepts `u32` rank intervals row by row; lets the freeze mapping loop be
/// written once for both builder widths.
trait RowSink {
    fn add(&mut self, lo: u32, hi: u32);
    fn seal(&mut self);
}

impl RowSink for FlatBuilder {
    #[inline]
    fn add(&mut self, lo: u32, hi: u32) {
        self.push(lo, hi);
    }
    fn seal(&mut self) {
        self.finish_row();
    }
}

impl RowSink for NarrowBuilder {
    #[inline]
    fn add(&mut self, lo: u32, hi: u32) {
        // The freeze gate guarantees every rank fits: live count <= u16::MAX.
        self.push(lo as u16, hi as u16);
    }
    fn seal(&mut self) {
        self.finish_row();
    }
}

impl RankRows {
    fn rows(&self) -> usize {
        match self {
            RankRows::Wide(ix) => ix.rows(),
            RankRows::Narrow(ix) => ix.rows(),
        }
    }

    fn total_intervals(&self) -> usize {
        match self {
            RankRows::Wide(ix) => ix.total_intervals(),
            RankRows::Narrow(ix) => ix.total_intervals(),
        }
    }

    #[inline]
    fn contains(&self, row: usize, t: u32) -> bool {
        match self {
            RankRows::Wide(ix) => ix.contains_point(row, t),
            RankRows::Narrow(ix) => ix.contains_point(row, t as u16),
        }
    }

    /// Calls `f` with each of `row`'s `(lo, hi)` rank intervals, ascending.
    fn for_each_interval(&self, row: usize, mut f: impl FnMut(u32, u32)) {
        match self {
            RankRows::Wide(ix) => ix.row_intervals(row).for_each(|(lo, hi)| f(lo, hi)),
            RankRows::Narrow(ix) => {
                ix.row_intervals(row).for_each(|(lo, hi)| f(lo as u32, hi as u32));
            }
        }
    }
}

/// An immutable, cache-friendly snapshot of a closure's query state. Built
/// by [`crate::CompressedClosure::freeze`]; answers `reaches`,
/// `successors`, `successor_count`, and `predecessors` without touching the
/// mutable label structures.
#[derive(Debug, Clone)]
pub struct QueryPlane {
    /// Per-node rank-interval sets in flat boundary-array layout. Nodes
    /// that the hybrid selection moved to a bitset row keep an *empty* row
    /// here so CSR row indices stay aligned with node ids.
    index: RankRows,
    /// Rank of each node's own postorder number in the live number line —
    /// the probe key for `reaches(_, dst)` and `predecessors(dst)`.
    rank: Vec<u32>,
    /// Inverted index: every rank interval with its owning node —
    /// including the intervals of bitset-rowed nodes, so `predecessors`
    /// never needs to consult row representations at all.
    inverted: StabbingIndex,
    /// Live node at each rank (the number line with the numbers compressed
    /// away): decoding a rank interval is a slice copy.
    line_nodes: Vec<u32>,
    /// The labeling's interval count at freeze time, *before* rank merging;
    /// the consistency audit compares it against the live labeling to catch
    /// updates that forgot to invalidate the plane.
    source_intervals: usize,
    /// GRAIL-style negative-cutoff labels over the base relation, consulted
    /// first on every `reaches`: when the label containment fails the pair
    /// is provably unreachable and no row is touched.
    cutoff: CutoffLabels,
    /// Bitset successor rows for the nodes whose merged rank-interval count
    /// exceeded the hybrid threshold; empty under a pure-interval freeze.
    bitrows: BitRows,
}

/// Reusable freeze-time buffers, plus (optionally) a retired snapshot whose
/// heap allocations the next freeze absorbs. A caller that refreezes
/// repeatedly — the serving layer republishing after every write batch —
/// keeps one scratch alive so each snapshot is built into already-sized
/// arrays instead of growing fresh ones.
#[derive(Debug, Default)]
pub(crate) struct FreezeScratch {
    /// Sorted live postorder numbers; needed only while mapping interval
    /// endpoints to ranks, never kept in the finished plane.
    line_nums: Vec<u64>,
    /// Staging for the inverted index's `(lo, hi, owner)` triples.
    inverted_items: Vec<(u32, u32, u32)>,
    /// Staging for one node's merged rank intervals (the hybrid selection
    /// needs the count before committing the row to either representation).
    row: Vec<(u32, u32)>,
    /// A retired snapshot whose rank array, line array, row index, and
    /// stabbing index are recycled (when the key widths line up).
    retired: Option<QueryPlane>,
}

impl FreezeScratch {
    /// Hands a retired snapshot's buffers to the next freeze. Only useful
    /// when the caller uniquely owns the plane — a snapshot still shared
    /// with readers must simply be dropped.
    pub(crate) fn retire(&mut self, plane: QueryPlane) {
        self.retired = Some(plane);
    }
}

impl QueryPlane {
    /// Snapshots the given labeling, rank-compressing every interval. The
    /// base relation rides along to seed the negative-cutoff labels, and
    /// `threshold` is the hybrid row-selection rule: any node whose merged
    /// rank-interval count *exceeds* it trades its interval row for a
    /// bitset row (`usize::MAX` = pure interval, the default).
    pub(crate) fn freeze(graph: &DiGraph, lab: &Labeling, threshold: usize) -> QueryPlane {
        Self::freeze_impl(graph, lab, threshold, false, &mut FreezeScratch::default())
    }

    /// As [`QueryPlane::freeze`], but building into (and reclaiming) the
    /// caller's [`FreezeScratch`] so repeated freezes reuse allocations.
    pub(crate) fn freeze_with(
        graph: &DiGraph,
        lab: &Labeling,
        threshold: usize,
        scratch: &mut FreezeScratch,
    ) -> QueryPlane {
        Self::freeze_impl(graph, lab, threshold, false, scratch)
    }

    /// As [`QueryPlane::freeze`], but forcing the wide (`u32`) row layout
    /// even when the snapshot would fit the narrow one — lets tests compare
    /// both layouts on the small graphs they can afford.
    #[cfg(test)]
    pub(crate) fn freeze_wide(graph: &DiGraph, lab: &Labeling, threshold: usize) -> QueryPlane {
        Self::freeze_impl(graph, lab, threshold, true, &mut FreezeScratch::default())
    }

    fn freeze_impl(
        graph: &DiGraph,
        lab: &Labeling,
        threshold: usize,
        force_wide: bool,
        scratch: &mut FreezeScratch,
    ) -> QueryPlane {
        let n = lab.post.len();
        debug_assert_eq!(graph.node_count(), n, "freeze graph out of step with labeling");
        let FreezeScratch { line_nums, inverted_items, row, retired } = scratch;
        let (mut rank, mut line_nodes, retired_rows, retired_stab) = match retired.take() {
            Some(QueryPlane { index, rank, inverted, line_nodes, .. }) => {
                (rank, line_nodes, Some(index), Some(inverted))
            }
            None => (Vec::new(), Vec::new(), None, None),
        };
        // The live number line, split into its two halves: the sorted
        // numbers (only needed during freezing, to map endpoints to ranks)
        // and the node at each rank (kept for successor decoding).
        let live = lab.line.live_count();
        line_nums.clear();
        line_nums.reserve(live);
        line_nodes.clear();
        line_nodes.reserve(live);
        for (num, node) in lab.line.live_in_range(0, u64::MAX) {
            line_nums.push(num);
            line_nodes.push(node);
        }
        // Every node's own number is live, so the rank array is total.
        rank.clear();
        rank.resize(n, 0u32);
        for (r, &node) in line_nodes.iter().enumerate() {
            rank[node as usize] = r as u32;
        }

        let source_intervals: usize = lab.sets.iter().map(|s| s.count()).sum();
        // Stage each node's *merged* rank intervals first (the hybrid
        // selection needs the count before committing), then route the row:
        // past the threshold it is range-filled into a bitset row and the
        // CSR gets an empty row (keeping row index == node id); otherwise
        // the intervals feed the flat builder unchanged. Either way the
        // merged intervals also feed the inverted index, so `predecessors`
        // is representation-blind. An interval covering only dead numbers
        // maps to nothing and is dropped — every query key is a live
        // number.
        inverted_items.clear();
        inverted_items.reserve(source_intervals);
        let mut bits = BitRowsBuilder::new(n, live);
        let mut feed = |sink: &mut dyn RowSink| {
            for (owner, set) in lab.sets.iter().enumerate() {
                merged_row_into(line_nums, set, row);
                for &(rlo, rhi) in row.iter() {
                    inverted_items.push((rlo, rhi, owner as u32));
                }
                if row.len() > threshold {
                    bits.add_row(owner, row);
                } else {
                    for &(rlo, rhi) in row.iter() {
                        sink.add(rlo, rhi);
                    }
                }
                sink.seal();
            }
        };
        let index = if live <= u16::MAX as usize && !force_wide {
            let mut builder = match retired_rows {
                Some(RankRows::Narrow(ix)) => NarrowBuilder::recycle(ix),
                _ => NarrowBuilder::with_capacity(n, source_intervals),
            };
            feed(&mut builder);
            RankRows::Narrow(builder.finish())
        } else {
            let mut builder = match retired_rows {
                Some(RankRows::Wide(ix)) => FlatBuilder::recycle(ix),
                _ => FlatBuilder::with_capacity(n, source_intervals),
            };
            feed(&mut builder);
            RankRows::Wide(builder.finish())
        };
        let inverted = retired_stab.unwrap_or_default().rebuild(inverted_items);
        // The cutoff labels come from the base relation, not the labeling:
        // one DFS, two u32s per node, always built (they pay for themselves
        // on the very first "no").
        let cutoff = CutoffLabels::build(graph);

        QueryPlane {
            index,
            rank,
            inverted,
            line_nodes,
            source_intervals,
            cutoff,
            bitrows: bits.finish(),
        }
    }

    /// Number of nodes in the snapshot.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.rank.len()
    }

    /// Total rank intervals in the snapshot (interval rows plus the merged
    /// intervals the bitset rows absorbed). At most the mutable closure's
    /// [`crate::CompressedClosure::total_intervals`] at freeze time —
    /// usually well below it, since rank compression merges intervals
    /// separated only by dead numbers.
    #[inline]
    pub fn total_intervals(&self) -> usize {
        self.index.total_intervals() + self.bitrows.interval_count()
    }

    /// Number of nodes the hybrid selection moved to bitset rows (0 under
    /// a pure-interval freeze).
    #[inline]
    pub fn bitset_rows(&self) -> usize {
        self.bitrows.row_count()
    }

    /// Whether `src` reaches `dst` (reflexive). The negative-cutoff labels
    /// go first — most "no" answers return on two label compares without
    /// touching any row — then `src`'s row in whichever representation it
    /// carries: one word test for a bitset row, one fenced parity probe of
    /// the boundary-array row otherwise.
    #[inline]
    pub fn reaches(&self, src: NodeId, dst: NodeId) -> bool {
        if !self.cutoff.may_reach(src, dst) {
            return false;
        }
        let t = self.rank[dst.index()];
        match self.bitrows.contains(src.index(), t) {
            Some(hit) => hit,
            None => self.index.contains(src.index(), t),
        }
    }

    /// The pre-hybrid probe path: `src`'s boundary-array row alone, no
    /// negative-cutoff screen, no bitset rows. Only meaningful on a
    /// pure-interval plane (hybrid freezes move heavy rows out of the
    /// boundary index); kept as the baseline the `hybrid_scale` experiment
    /// and its CSV measure the oracle against.
    #[inline]
    pub fn reaches_interval_only(&self, src: NodeId, dst: NodeId) -> bool {
        debug_assert!(
            self.bitrows.row_count() == 0,
            "interval-only probe on a hybrid plane"
        );
        self.index.contains(src.index(), self.rank[dst.index()])
    }

    /// All nodes reachable from `node` (including itself), ascending by
    /// postorder number — identical to the mutable decode. Rank intervals
    /// are disjoint and sorted, so each one is a straight slice copy.
    pub fn successors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.successor_count(node));
        self.successors_into(node, &mut out);
        out
    }

    /// [`QueryPlane::successors`] into a caller-provided buffer (cleared
    /// first): with a reused buffer the decode allocates nothing, which is
    /// what the sharded scatter-gather merge path leans on.
    pub fn successors_into(&self, node: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        // A bitset row decodes as maximal set-bit runs — the same (lo, hi)
        // geometry its interval row would have held, so the output order
        // (ascending rank == ascending postorder number) is identical.
        let decode = |rlo: u32, rhi: u32, out: &mut Vec<NodeId>| {
            let nodes = &self.line_nodes[rlo as usize..=rhi as usize];
            out.extend(nodes.iter().map(|&n| NodeId(n)));
        };
        if self.bitrows.for_each_run(node.index(), |rlo, rhi| decode(rlo, rhi, out)) {
            return;
        }
        self.index.for_each_interval(node.index(), |rlo, rhi| decode(rlo, rhi, out));
    }

    /// Count of nodes reachable from `node` (including itself), without
    /// materializing the list: a popcount sweep for a bitset row, a sum of
    /// interval widths otherwise.
    pub fn successor_count(&self, node: NodeId) -> usize {
        if let Some(count) = self.bitrows.count(node.index()) {
            return count;
        }
        let mut count = 0usize;
        self.index.for_each_interval(node.index(), |rlo, rhi| {
            count += (rhi - rlo) as usize + 1;
        });
        count
    }

    /// All nodes that reach `node` (including itself), ascending by node
    /// id — identical order to the mutable scan. One stabbing query for
    /// `node`'s rank over the inverted index: O(k log m) for k
    /// predecessors among m total intervals.
    pub fn predecessors(&self, node: NodeId) -> Vec<NodeId> {
        let mut owners = Vec::new();
        let mut out = Vec::new();
        self.predecessors_into(node, &mut owners, &mut out);
        out
    }

    /// [`QueryPlane::predecessors`] into caller-provided buffers (both
    /// cleared first): `scratch` receives the raw stab results, `out` the
    /// sorted ids. With reused buffers the whole query allocates nothing.
    pub fn predecessors_into(&self, node: NodeId, scratch: &mut Vec<u32>, out: &mut Vec<NodeId>) {
        scratch.clear();
        self.inverted.stab(self.rank[node.index()], scratch);
        // A row's merged intervals are disjoint, so each owner appears at
        // most once — sorting alone restores id order.
        scratch.sort_unstable();
        out.clear();
        out.extend(scratch.iter().map(|&n| NodeId(n)));
    }

    /// Cross-checks the snapshot against the labeling it should mirror —
    /// shape, source interval count, and the full rank bijection. O(n +
    /// intervals); run by [`crate::CompressedClosure::audit`] whenever a
    /// plane is frozen, so the fuzzer catches a stale or torn snapshot
    /// immediately.
    pub(crate) fn check_consistency(&self, lab: &Labeling) -> Result<(), String> {
        if self.rank.len() != lab.post.len() || self.index.rows() != lab.post.len() {
            return Err(format!(
                "plane shape mismatch: {} ranks / {} rows for {} nodes",
                self.rank.len(),
                self.index.rows(),
                lab.post.len()
            ));
        }
        let total: usize = lab.sets.iter().map(|s| s.count()).sum();
        if self.source_intervals != total {
            return Err(format!(
                "plane frozen from {} intervals but labeling now holds {total}",
                self.source_intervals
            ));
        }
        let merged = self.index.total_intervals() + self.bitrows.interval_count();
        if merged > total || self.inverted.len() != merged {
            return Err(format!(
                "plane interval counts inconsistent: CSR {} + bitset {} (merged from {total}), \
                 inverted {}",
                self.index.total_intervals(),
                self.bitrows.interval_count(),
                self.inverted.len()
            ));
        }
        if self.cutoff.len() != lab.post.len() {
            return Err(format!(
                "plane cutoff labels cover {} nodes, labeling has {}",
                self.cutoff.len(),
                lab.post.len()
            ));
        }
        if self.line_nodes.len() != lab.line.live_count() {
            return Err(format!(
                "plane line length {} != {} live numbers",
                self.line_nodes.len(),
                lab.line.live_count()
            ));
        }
        for (r, (num, node)) in lab.line.live_in_range(0, u64::MAX).enumerate() {
            if self.line_nodes[r] != node {
                return Err(format!("plane rank {r} holds node {}, line says {node}", {
                    self.line_nodes[r]
                }));
            }
            if lab.post[node as usize] == num && self.rank[node as usize] != r as u32 {
                return Err(format!(
                    "node {node} has rank {} in the plane but its number {num} sits at rank {r}",
                    self.rank[node as usize]
                ));
            }
        }
        Ok(())
    }
}
