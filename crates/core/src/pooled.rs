//! Shared-range storage: the paper's §3.3 footnote optimization.
//!
//! "For the compressed transitive closure, in the simplest scheme, one has
//! to store both end-points for every range interval. One may do better,
//! for example, by storing the ranges separately and pointers to ranges at
//! the nodes."
//!
//! Non-tree intervals are *copies*: every one of them is some node's tree
//! interval, inherited by possibly many predecessors. [`PooledClosure`]
//! stores each distinct range once in a shared pool and replaces the
//! per-node copies with pool indices, trading one number per reference
//! against two. On graphs with heavily-shared sub-structures this roughly
//! halves storage; a `storage_units` comparison quantifies it per graph.

use std::collections::HashMap;

use tc_graph::NodeId;
use tc_interval::Interval;

use crate::CompressedClosure;

/// A read-optimized closure representation with a deduplicated range pool.
///
/// Built from a [`CompressedClosure`] snapshot; queries answer identically.
/// (Being a compacted snapshot, it does not support incremental updates —
/// rebuild it after an update epoch, like any other derived physical
/// layout.)
///
/// ```
/// use tc_graph::{generators, NodeId};
/// use tc_core::{ClosureConfig, pooled::PooledClosure};
///
/// let g = generators::bipartite_worst(6, 6); // heavy interval sharing
/// let closure = ClosureConfig::new().gap(1).build(&g).unwrap();
/// let pooled = PooledClosure::from_closure(&closure);
/// assert!(pooled.storage_units() < pooled.flat_storage_units());
/// assert_eq!(pooled.reaches(NodeId(0), NodeId(7)), closure.reaches(NodeId(0), NodeId(7)));
/// ```
#[derive(Debug, Clone)]
pub struct PooledClosure {
    /// All distinct intervals, deduplicated.
    pool: Vec<Interval>,
    /// Per node: indices into `pool`, sorted by the interval's `lo` (the
    /// per-node invariants of `IntervalSet` carry over, so queries stay a
    /// binary search).
    refs: Vec<Vec<u32>>,
    /// Postorder number per node (the query key).
    post: Vec<u64>,
}

impl PooledClosure {
    /// Snapshots a closure into pooled form.
    pub fn from_closure(closure: &CompressedClosure) -> Self {
        let mut pool: Vec<Interval> = Vec::new();
        let mut index: HashMap<(u64, u64), u32> = HashMap::new();
        let n = closure.node_count();
        let mut refs = Vec::with_capacity(n);
        let mut post = Vec::with_capacity(n);
        for v in closure.graph().nodes() {
            post.push(closure.post_number(v));
            let list: Vec<u32> = closure
                .intervals(v)
                .iter()
                .map(|iv| {
                    *index.entry((iv.lo(), iv.hi())).or_insert_with(|| {
                        pool.push(iv);
                        (pool.len() - 1) as u32
                    })
                })
                .collect();
            // IntervalSet iterates sorted by lo, so `list` is already in
            // per-node query order.
            refs.push(list);
        }
        PooledClosure { pool, refs, post }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.refs.len()
    }

    /// Whether `src` reaches `dst` (reflexive) — binary search over the
    /// node's pooled references.
    pub fn reaches(&self, src: NodeId, dst: NodeId) -> bool {
        let target = self.post[dst.index()];
        let list = &self.refs[src.index()];
        // Last interval with lo <= target (his ascend with los).
        let pos = list.partition_point(|&ix| self.pool[ix as usize].lo() <= target);
        pos > 0 && self.pool[list[pos - 1] as usize].hi() >= target
    }

    /// Distinct ranges stored.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// Total per-node references.
    pub fn ref_count(&self) -> usize {
        self.refs.iter().map(Vec::len).sum()
    }

    /// Storage in §3.3 units: two numbers per pooled range plus one per
    /// reference (versus `2 × references` for the flat layout).
    pub fn storage_units(&self) -> usize {
        2 * self.pool.len() + self.ref_count()
    }

    /// The flat layout's storage for the same label data, for comparison.
    pub fn flat_storage_units(&self) -> usize {
        2 * self.ref_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClosureConfig;
    use tc_graph::{generators, DiGraph};

    fn pooled(g: &DiGraph) -> (CompressedClosure, PooledClosure) {
        let c = ClosureConfig::new().gap(1).build(g).unwrap();
        let p = PooledClosure::from_closure(&c);
        (c, p)
    }

    #[test]
    fn answers_match_flat_closure() {
        for seed in 0..5 {
            let g = generators::random_dag(generators::RandomDagConfig {
                nodes: 50,
                avg_out_degree: 2.5,
                seed,
            });
            let (c, p) = pooled(&g);
            for u in g.nodes() {
                for v in g.nodes() {
                    assert_eq!(p.reaches(u, v), c.reaches(u, v), "({u:?},{v:?}) seed {seed}");
                }
            }
        }
    }

    #[test]
    fn sharing_pays_on_the_bipartite_worst_case() {
        // Fig 3.6's worst case is ALL sharing: m sources each hold copies of
        // the same k sink intervals.
        let g = generators::bipartite_worst(8, 8);
        let (c, p) = pooled(&g);
        assert_eq!(p.flat_storage_units(), 2 * c.total_intervals());
        assert!(
            p.storage_units() < p.flat_storage_units(),
            "pooled {} vs flat {}",
            p.storage_units(),
            p.flat_storage_units()
        );
        // Pool holds one entry per node (every interval is some tree
        // interval).
        assert_eq!(p.pool_size(), g.node_count());
    }

    #[test]
    fn tree_has_no_sharing_to_exploit() {
        // One interval per node, each referenced once: pooling costs more
        // (pool + refs = 3n vs flat 2n) — the trade-off is graph-dependent,
        // which is why the paper keeps the flat scheme as the baseline.
        let g = generators::balanced_tree(3, 3);
        let (_, p) = pooled(&g);
        assert_eq!(p.pool_size(), g.node_count());
        assert_eq!(p.ref_count(), g.node_count());
        assert!(p.storage_units() > p.flat_storage_units());
    }

    #[test]
    fn pool_is_deduplicated() {
        let g = generators::bipartite_worst(4, 4);
        let (c, p) = pooled(&g);
        // Far fewer pooled ranges than total references.
        assert!(p.pool_size() < c.total_intervals());
        assert_eq!(p.ref_count(), c.total_intervals());
    }
}
