//! Reachability over cyclic graphs via SCC condensation.
//!
//! "The techniques presented in this paper can also be extended to cyclic
//! graphs by collapsing strongly connected components into one node" (§3).
//! [`CyclicClosure`] wraps a [`CompressedClosure`] built over the
//! condensation and translates queries through the component mapping.

use tc_graph::scc::{condense, Condensation};
use tc_graph::{DiGraph, NodeId};

use crate::{ClosureConfig, CompressedClosure};

/// A compressed transitive closure over an arbitrary (possibly cyclic)
/// directed graph.
///
/// ```
/// use tc_graph::{DiGraph, NodeId};
/// use tc_core::cyclic::CyclicClosure;
///
/// // 0 <-> 1 form a cycle feeding 2.
/// let g = DiGraph::from_edges([(0, 1), (1, 0), (1, 2)]);
/// let c = CyclicClosure::build(&g);
/// assert!(c.reaches(NodeId(0), NodeId(1)));
/// assert!(c.reaches(NodeId(1), NodeId(0)));
/// assert!(c.reaches(NodeId(0), NodeId(2)));
/// assert!(!c.reaches(NodeId(2), NodeId(0)));
/// ```
#[derive(Debug, Clone)]
pub struct CyclicClosure {
    condensation: Condensation,
    inner: CompressedClosure,
}

impl CyclicClosure {
    /// Builds the closure of `g` with the default configuration.
    pub fn build(g: &DiGraph) -> Self {
        Self::build_with(g, ClosureConfig::default())
    }

    /// Builds the closure of `g` with an explicit configuration.
    pub fn build_with(g: &DiGraph, config: ClosureConfig) -> Self {
        let condensation = condense(g);
        let inner = config
            .build(&condensation.dag)
            .expect("condensation is acyclic by construction");
        CyclicClosure {
            condensation,
            inner,
        }
    }

    /// Whether `src` reaches `dst` (reflexive).
    pub fn reaches(&self, src: NodeId, dst: NodeId) -> bool {
        let cs = self.condensation.node_of(src);
        let cd = self.condensation.node_of(dst);
        self.inner.reaches(cs, cd)
    }

    /// Whether `a` and `b` are mutually reachable (same SCC).
    pub fn mutually_reachable(&self, a: NodeId, b: NodeId) -> bool {
        self.condensation.node_of(a) == self.condensation.node_of(b)
    }

    /// All original nodes reachable from `node` (including its own SCC).
    pub fn successors(&self, node: NodeId) -> Vec<NodeId> {
        let comp = self.condensation.node_of(node);
        let mut out = Vec::new();
        for c in self.inner.successors(comp) {
            out.extend_from_slice(self.condensation.members_of(c));
        }
        out.sort_unstable();
        out
    }

    /// The underlying closure over the condensation DAG.
    pub fn inner(&self) -> &CompressedClosure {
        &self.inner
    }

    /// The condensation mapping.
    pub fn condensation(&self) -> &Condensation {
        &self.condensation
    }
}

/// A cyclic-graph closure that absorbs updates.
///
/// Inter-component updates ride the §4 incremental machinery of the inner
/// DAG closure; updates that change the component structure itself (an arc
/// closing a cycle between components, or a deletion inside a component)
/// re-condense and rebuild — the honest cost model for the paper's
/// "collapse strongly connected components" extension, where component
/// identity is a global property.
///
/// ```
/// use tc_graph::{DiGraph, NodeId};
/// use tc_core::cyclic::DynamicCyclicClosure;
///
/// let mut c = DynamicCyclicClosure::build(&DiGraph::with_nodes(3));
/// c.add_edge(NodeId(0), NodeId(1));
/// c.add_edge(NodeId(1), NodeId(2));
/// c.add_edge(NodeId(2), NodeId(0)); // closes a cycle: components merge
/// assert!(c.mutually_reachable(NodeId(0), NodeId(2)));
/// c.remove_edge(NodeId(2), NodeId(0)); // breaks it: they split again
/// assert!(!c.mutually_reachable(NodeId(0), NodeId(2)));
/// assert!(c.reaches(NodeId(0), NodeId(2)));
/// ```
#[derive(Debug, Clone)]
pub struct DynamicCyclicClosure {
    /// The original (possibly cyclic) relation.
    graph: DiGraph,
    condensation: Condensation,
    inner: CompressedClosure,
    config: ClosureConfig,
}

impl DynamicCyclicClosure {
    /// Builds from an arbitrary directed graph.
    pub fn build(g: &DiGraph) -> Self {
        Self::build_with(g, ClosureConfig::default())
    }

    /// Builds with an explicit configuration for the inner closure.
    pub fn build_with(g: &DiGraph, config: ClosureConfig) -> Self {
        let condensation = condense(g);
        let inner = config
            .build(&condensation.dag)
            .expect("condensation is acyclic");
        DynamicCyclicClosure {
            graph: g.clone(),
            condensation,
            inner,
            config,
        }
    }

    /// The original relation.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Whether `src` reaches `dst` (reflexive).
    pub fn reaches(&self, src: NodeId, dst: NodeId) -> bool {
        self.inner.reaches(
            self.condensation.node_of(src),
            self.condensation.node_of(dst),
        )
    }

    /// Whether `a` and `b` are mutually reachable.
    pub fn mutually_reachable(&self, a: NodeId, b: NodeId) -> bool {
        self.condensation.node_of(a) == self.condensation.node_of(b)
    }

    /// Adds a node (its own singleton component).
    pub fn add_node(&mut self) -> NodeId {
        let node = self.graph.add_node();
        let comp = self
            .inner
            .add_node_with_parents(&[])
            .expect("root insertion cannot fail");
        self.condensation.scc.component.push(comp.index());
        self.condensation.scc.members.push(vec![node]);
        self.condensation.dag.add_node();
        node
    }

    /// Adds the arc `src -> dst`. Cycles are *allowed*: an arc that closes a
    /// cycle merges components (triggering a rebuild); all other arcs update
    /// the inner closure incrementally. Returns `true` if the arc was new.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) -> bool {
        if src == dst || self.graph.has_edge(src, dst) {
            return false;
        }
        self.graph.add_edge(src, dst);
        let cs = self.condensation.node_of(src);
        let cd = self.condensation.node_of(dst);
        if cs == cd {
            return true; // intra-component: reachability unchanged
        }
        if self.inner.reaches(cd, cs) {
            // Closing a cycle between components: the component structure
            // changes — re-condense.
            self.rebuild();
        } else if self.condensation.dag.add_edge(cs, cd) {
            // First original arc inducing this component arc.
            self.inner
                .add_edge(cs, cd)
                .expect("checked: no component cycle");
        }
        true
    }

    /// Removes the arc `src -> dst`. Returns `false` if absent.
    ///
    /// Deleting inside a component may split it (rebuild); deleting the last
    /// original arc between two components removes the induced component
    /// arc incrementally.
    pub fn remove_edge(&mut self, src: NodeId, dst: NodeId) -> bool {
        if !self.graph.remove_edge(src, dst) {
            return false;
        }
        let cs = self.condensation.node_of(src);
        let cd = self.condensation.node_of(dst);
        if cs == cd {
            self.rebuild(); // the component may split
            return true;
        }
        // Still another original arc spanning the same component pair?
        let still_spanned = self.graph.edges().any(|(u, v)| {
            self.condensation.node_of(u) == cs && self.condensation.node_of(v) == cd
        });
        if !still_spanned {
            self.condensation.dag.remove_edge(cs, cd);
            self.inner
                .remove_edge(cs, cd)
                .expect("component arc must exist");
        }
        true
    }

    /// Re-condenses and rebuilds the inner closure from the current graph.
    pub fn rebuild(&mut self) {
        *self = Self::build_with(&self.graph, self.config);
    }

    /// Exhaustive check against DFS ground truth (tests only).
    pub fn verify(&self) -> Result<(), String> {
        for u in self.graph.nodes() {
            let truth = tc_graph::traverse::reachable_set(&self.graph, u);
            for v in self.graph.nodes() {
                if self.reaches(u, v) != truth.contains(v.index()) {
                    return Err(format!("dynamic cyclic closure wrong on ({u:?},{v:?})"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn cycle_members_reach_each_other() {
        let g = DiGraph::from_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
        let c = CyclicClosure::build(&g);
        for a in 0..3u32 {
            for b in 0..3u32 {
                assert!(c.reaches(NodeId(a), NodeId(b)));
                assert!(c.mutually_reachable(NodeId(a), NodeId(b)));
            }
            assert!(c.reaches(NodeId(a), NodeId(3)));
            assert!(!c.reaches(NodeId(3), NodeId(a)));
        }
        let succ = c.successors(NodeId(1));
        assert_eq!(succ, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn acyclic_graph_behaves_like_plain_closure() {
        let g = DiGraph::from_edges([(0, 1), (1, 2), (0, 2)]);
        let c = CyclicClosure::build(&g);
        let plain = CompressedClosure::build(&g).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(c.reaches(u, v), plain.reaches(u, v));
            }
        }
    }

    #[test]
    fn random_cyclic_graphs_match_dfs_truth() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..10 {
            let n = 30;
            let mut g = DiGraph::with_nodes(n);
            for _ in 0..60 {
                let a = rng.random_range(0..n as u32);
                let b = rng.random_range(0..n as u32);
                if a != b {
                    g.add_edge(NodeId(a), NodeId(b));
                }
            }
            let c = CyclicClosure::build(&g);
            for u in g.nodes() {
                let truth = tc_graph::traverse::reachable_set(&g, u);
                for v in g.nodes() {
                    assert_eq!(
                        c.reaches(u, v),
                        truth.contains(v.index()),
                        "reach({u:?},{v:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn dynamic_cycle_formation_and_dissolution() {
        let mut c = DynamicCyclicClosure::build(&DiGraph::with_nodes(4));
        assert!(c.add_edge(NodeId(0), NodeId(1)));
        assert!(c.add_edge(NodeId(1), NodeId(2)));
        assert!(!c.mutually_reachable(NodeId(0), NodeId(2)));
        // Close the cycle 0 -> 1 -> 2 -> 0.
        assert!(c.add_edge(NodeId(2), NodeId(0)));
        assert!(c.mutually_reachable(NodeId(0), NodeId(2)));
        assert!(c.reaches(NodeId(2), NodeId(1)));
        c.verify().unwrap();
        // Hang node 3 off the cycle.
        c.add_edge(NodeId(1), NodeId(3));
        assert!(c.reaches(NodeId(0), NodeId(3)));
        assert!(!c.reaches(NodeId(3), NodeId(0)));
        // Break the cycle: components split again.
        assert!(c.remove_edge(NodeId(2), NodeId(0)));
        assert!(!c.mutually_reachable(NodeId(0), NodeId(2)));
        assert!(c.reaches(NodeId(0), NodeId(2)));
        c.verify().unwrap();
    }

    #[test]
    fn dynamic_parallel_component_arcs() {
        // Two original arcs spanning the same component pair: removing one
        // must keep reachability; removing both must drop it.
        let mut c = DynamicCyclicClosure::build(&DiGraph::with_nodes(4));
        // Component {0,1} via 2-cycle, arcs 0->2 and 1->2... wait, 0 and 1
        // mutually: 0->1, 1->0.
        c.add_edge(NodeId(0), NodeId(1));
        c.add_edge(NodeId(1), NodeId(0));
        c.add_edge(NodeId(0), NodeId(2));
        c.add_edge(NodeId(1), NodeId(2));
        assert!(c.reaches(NodeId(0), NodeId(2)));
        assert!(c.remove_edge(NodeId(0), NodeId(2)));
        assert!(c.reaches(NodeId(0), NodeId(2)), "second spanning arc remains");
        assert!(c.remove_edge(NodeId(1), NodeId(2)));
        assert!(!c.reaches(NodeId(0), NodeId(2)));
        c.verify().unwrap();
    }

    #[test]
    fn dynamic_add_node() {
        let mut c = DynamicCyclicClosure::build(&DiGraph::from_edges([(0, 1)]));
        let n = c.add_node();
        assert!(c.reaches(n, n));
        c.add_edge(NodeId(1), n);
        assert!(c.reaches(NodeId(0), n));
        c.verify().unwrap();
    }

    #[test]
    fn dynamic_random_churn_matches_dfs() {
        let mut rng = StdRng::seed_from_u64(17);
        for seed in 0..4 {
            let mut g = DiGraph::with_nodes(12);
            let mut rng2 = StdRng::seed_from_u64(seed);
            for _ in 0..10 {
                let a = rng2.random_range(0..12u32);
                let b = rng2.random_range(0..12u32);
                if a != b {
                    g.add_edge(NodeId(a), NodeId(b));
                }
            }
            let mut c = DynamicCyclicClosure::build(&g);
            for step in 0..60 {
                let a = NodeId(rng.random_range(0..c.graph().node_count() as u32));
                let b = NodeId(rng.random_range(0..c.graph().node_count() as u32));
                match rng.random_range(0..4) {
                    0 | 1 => {
                        if a != b {
                            c.add_edge(a, b);
                        }
                    }
                    2 => {
                        c.remove_edge(a, b);
                    }
                    _ => {
                        c.add_node();
                    }
                }
                if step % 15 == 14 {
                    c.verify()
                        .unwrap_or_else(|e| panic!("seed {seed} step {step}: {e}"));
                }
            }
            c.verify().unwrap();
        }
    }

    #[test]
    fn self_loop_only_graph() {
        // A 2-cycle collapses to a single condensed node.
        let g = DiGraph::from_edges([(0, 1), (1, 0)]);
        let c = CyclicClosure::build(&g);
        assert!(c.reaches(NodeId(0), NodeId(1)));
        assert_eq!(c.inner().node_count(), 1);
        assert_eq!(c.successors(NodeId(0)), vec![NodeId(0), NodeId(1)]);
    }
}
