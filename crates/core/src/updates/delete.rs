//! Deletions (§4.2).

use tc_graph::NodeId;

use crate::updates::UpdateError;
use crate::CompressedClosure;

impl CompressedClosure {
    /// Removes the arc `src -> dst`.
    ///
    /// * **Non-tree arc**: the spanning tree is untouched; non-tree
    ///   intervals are re-derived with one reverse-topological sweep ("There
    ///   is no change to the spanning tree of the graph. Perform a traversal
    ///   of all the nodes in the reverse topological order, recomputing the
    ///   non-tree intervals", §4.2).
    /// * **Tree arc**: the subtree rooted at `dst` is detached, made a child
    ///   of the virtual root, and renumbered with fresh numbers above the
    ///   current maximum (§4.2 "Take the subtree rooted at j and make it a
    ///   child of the virtual root. Renumber the nodes in the subtree,
    ///   assigning them numbers > l"). The old numbers are tombstoned —
    ///   stale ancestor intervals still span them. Remaining arcs into the
    ///   subtree (including the paper's "tree predecessors of j \[with\] a
    ///   non-tree arc coming into node k of the subtree") are accounted for
    ///   by the same reverse-topological sweep.
    pub fn remove_edge(&mut self, src: NodeId, dst: NodeId) -> Result<(), UpdateError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        if !self.graph.has_edge(src, dst) {
            return Err(UpdateError::NoSuchEdge(src, dst));
        }
        self.invalidate_plane();
        let is_tree = self.cover.is_tree_arc(src, dst);
        self.graph.remove_edge(src, dst);
        if is_tree {
            self.cover.detach(dst);
            // Everything renumbered by the relocation seeds the scoped
            // recompute (stale copies of the old numbers live only in
            // predecessors of the relocated nodes), plus `src`, whose own
            // set lost whatever it inherited over the removed arc.
            let mut seeds = self.relocate_subtree(dst);
            seeds.push(src);
            self.recompute_non_tree_scoped(&seeds);
            return Ok(());
        }
        if self.lab.low[dst.index()] == self.lab.post[dst.index()] {
            // Point-labeled destination: a §4.1 refinement node (or a
            // zero-width leaf) sitting inside another node's reserve tail.
            // Predecessor coverage of such a node is *implicit* — ancestor
            // tree intervals span its number — and that implicitness was
            // justified by the arcs present at refinement time. The arc
            // just removed may have carried some of that justification,
            // and spans cannot be shrunk per node; move the node out of
            // every span instead, so the recompute below derives its
            // coverage purely from the surviving arcs.
            self.lab.line.tombstone(self.lab.post[dst.index()]);
            let boundary = self.boundary_above_max();
            let num = boundary + self.config.gap;
            self.lab.post[dst.index()] = num;
            self.lab.low[dst.index()] = boundary + 1;
            self.lab.advertised_hi[dst.index()] = num;
            self.lab.line.assign(num, dst.0);
            // `dst` seeds the recompute alongside `src`: its surviving
            // predecessors hold point intervals at its old number.
            self.recompute_non_tree_scoped(&[src, dst]);
        } else {
            // Plain non-tree arc: no number changed anywhere, so only
            // `src` and its predecessors can shrink.
            self.recompute_non_tree_scoped(&[src]);
        }
        Ok(())
    }

    /// Removes `node` along with all its incident arcs. Children of `node`
    /// in the tree cover are re-rooted (their subtrees relocate); the node's
    /// number is tombstoned.
    ///
    /// In IS-A hierarchies deletion usually means "ignore the concept" with
    /// relationships between the remaining nodes intact (§4.2); this method
    /// implements true removal for the relational use case, preserving only
    /// reachability that does not pass through `node`.
    pub fn remove_node(&mut self, node: NodeId) -> Result<(), UpdateError> {
        self.check_node(node)?;
        self.invalidate_plane();
        // Drop incident arcs from the base relation.
        let out: Vec<NodeId> = self.graph.successors(node).to_vec();
        let inn: Vec<NodeId> = self.graph.predecessors(node).to_vec();
        for d in out {
            self.graph.remove_edge(node, d);
        }
        for &s in &inn {
            self.graph.remove_edge(s, node);
        }
        // Seeds for the scoped recompute: the node itself, its former
        // predecessors (their sets lose everything they inherited through
        // it — the arcs are already gone, so the reverse DFS needs them
        // handed over explicitly), and everything the relocations below
        // renumber. Former successors only *lose* a predecessor; their
        // outgoing reachability is untouched.
        let mut seeds: Vec<NodeId> = Vec::with_capacity(inn.len() + 1);
        seeds.push(node);
        seeds.extend(inn);
        // Orphan the node's tree children: each becomes a forest root with
        // fresh numbers (their old numbers sit inside stale intervals).
        let kids: Vec<NodeId> = self.cover.children(node).to_vec();
        for child in kids {
            self.cover.detach(child);
            seeds.extend(self.relocate_subtree(child));
        }
        self.cover.detach(node);
        // Quarantine the node itself: tombstone its number and give it an
        // empty label far above everything, so no query can reach it and it
        // reaches nothing. (Node ids are dense, so the slot remains.)
        self.lab.line.tombstone(self.lab.post[node.index()]);
        let boundary = self.boundary_above_max();
        let num = boundary + self.config.gap;
        self.lab.post[node.index()] = num;
        self.lab.low[node.index()] = boundary + 1;
        self.lab.advertised_hi[node.index()] = num;
        self.lab.line.assign(num, node.0);
        self.recompute_non_tree_scoped(&seeds);
        Ok(())
    }

    /// Highest committed boundary on the number line: the advertised top of
    /// the maximum live node, never below the raw maximum slot.
    pub(crate) fn boundary_above_max(&self) -> u64 {
        let Some(raw) = self.lab.line.max_used() else {
            return 0;
        };
        match self.lab.line.node_at(raw) {
            Some(n) => self.lab.advertised_hi[n as usize].max(raw),
            None => {
                // The maximum slot is a tombstone — successive node/subtree
                // removals leave one on top of the line. No live advertised
                // tail can reach past it (tails hold no slots, audit
                // invariant 4), but the highest live node's tail is taken
                // into account anyway rather than trusting that globally:
                // a boundary inside a live tail would hand refinements and
                // fresh labels the same numbers.
                let live_hi = self
                    .lab
                    .line
                    .max_live()
                    .map_or(0, |(_, n)| self.lab.advertised_hi[n as usize]);
                raw.max(live_hi)
            }
        }
    }

    /// Renumbers the (already detached) subtree rooted at `root` with fresh
    /// numbers above the current maximum, preserving its internal postorder
    /// structure. Old numbers become tombstones.
    ///
    /// The subtree's *numeric span* can hold live numbers beyond the cover
    /// members: a refinement node (§4.1) takes its number from the refined
    /// node's reserve tail, while its cover parent — the refined node's
    /// first predecessor — may sit outside the subtree entirely. The
    /// postorder walk below never reaches such a node, yet its number lies
    /// inside the spans the subtree's ex-ancestors still cover, so leaving
    /// it behind would turn those stale tree intervals into false
    /// positives (tombstones are harmless there; live numbers are not).
    /// Every live straggler in the span is therefore relocated as well, to
    /// a fresh point label; the caller's non-tree recompute rebuilds its
    /// interval set and its predecessors' coverage from the surviving arcs.
    ///
    /// Returns every renumbered node (subtree members plus stragglers) so
    /// the caller can seed the scoped recompute with them.
    pub(crate) fn relocate_subtree(&mut self, root: NodeId) -> Vec<NodeId> {
        debug_assert!(self.cover.parent(root).is_none(), "relocate requires a detached root");
        let gap = self.config.gap;
        let reserve = self.config.reserve;

        // Span vacated by the subtree: its tree interval plus the root's
        // own reserve tail (members' tails end below the root's postorder
        // number; every tail is at most `reserve` long).
        let span_lo = self.lab.low[root.index()];
        let span_hi = self.lab.post[root.index()] + reserve;
        let members = self.cover.subtree(root);
        let mut member = vec![false; self.graph.node_count()];
        for &v in &members {
            member[v.index()] = true;
        }
        let stragglers: Vec<NodeId> = self
            .lab
            .line
            .live_in_range(span_lo, span_hi)
            .filter(|&(_, node)| !member[node as usize])
            .map(|(_, node)| NodeId(node))
            .collect();

        // Tombstone every old number first so fresh numbers cannot collide.
        for &v in &members {
            self.lab.line.tombstone(self.lab.post[v.index()]);
        }
        for &z in &stragglers {
            self.lab.line.tombstone(self.lab.post[z.index()]);
        }

        let mut last = self.boundary_above_max();
        // Postorder walk mirroring `Labeling::assign`, offset past the max.
        let mut stack: Vec<(NodeId, usize, u64)> = vec![(root, 0, last)];
        while let Some(&mut (node, ref mut next, entry_last)) = stack.last_mut() {
            let kids = self.cover.children(node);
            if *next < kids.len() {
                let child = kids[*next];
                *next += 1;
                stack.push((child, 0, last));
            } else {
                let num = last + gap;
                self.lab.post[node.index()] = num;
                self.lab.low[node.index()] = entry_last + 1;
                self.lab.advertised_hi[node.index()] = num + reserve;
                self.lab.line.assign(num, node.0);
                last = num + reserve;
                stack.pop();
            }
        }

        // Stragglers get quarantine-style point labels above everything
        // (no tail: refinement nodes never carry one until a relabel).
        for &z in &stragglers {
            let boundary = self.boundary_above_max();
            let num = boundary + gap;
            self.lab.post[z.index()] = num;
            self.lab.low[z.index()] = boundary + 1;
            self.lab.advertised_hi[z.index()] = num;
            self.lab.line.assign(num, z.0);
        }

        let mut relocated = members;
        relocated.extend(stragglers);
        relocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClosureConfig, CompressedClosure};
    use tc_graph::{generators, DiGraph};
    use tc_interval::Interval;

    fn diamond_tail() -> CompressedClosure {
        let g = DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        ClosureConfig::new().gap(16).build(&g).unwrap()
    }

    #[test]
    fn remove_non_tree_arc() {
        let mut c = diamond_tail();
        // (2,3) is the non-tree arc (3's tree parent is 1 by tie-break).
        assert!(!c.cover().is_tree_arc(NodeId(2), NodeId(3)));
        c.remove_edge(NodeId(2), NodeId(3)).unwrap();
        assert!(!c.reaches(NodeId(2), NodeId(3)));
        assert!(!c.reaches(NodeId(2), NodeId(4)));
        assert!(c.reaches(NodeId(0), NodeId(4)), "path through 1 survives");
        c.verify().unwrap();
    }

    #[test]
    fn remove_tree_arc_relocates_subtree() {
        let mut c = diamond_tail();
        assert!(c.cover().is_tree_arc(NodeId(1), NodeId(3)));
        let old_num = c.post_number(NodeId(3));
        c.remove_edge(NodeId(1), NodeId(3)).unwrap();
        // Reachability via the other parent (2) must survive the move.
        assert!(!c.reaches(NodeId(1), NodeId(3)));
        assert!(c.reaches(NodeId(2), NodeId(3)));
        assert!(c.reaches(NodeId(2), NodeId(4)));
        assert!(c.reaches(NodeId(0), NodeId(4)));
        // The subtree got fresh numbers above the old maximum.
        assert!(c.post_number(NodeId(3)) > old_num);
        assert!(c.post_number(NodeId(4)) > old_num);
        c.verify().unwrap();
    }

    #[test]
    fn remove_last_incoming_tree_arc_orphans_subtree() {
        let g = DiGraph::from_edges([(0, 1), (1, 2)]);
        let mut c = ClosureConfig::new().gap(8).build(&g).unwrap();
        c.remove_edge(NodeId(0), NodeId(1)).unwrap();
        assert!(!c.reaches(NodeId(0), NodeId(1)));
        assert!(!c.reaches(NodeId(0), NodeId(2)));
        assert!(c.reaches(NodeId(1), NodeId(2)), "subtree stays intact");
        c.verify().unwrap();
    }

    #[test]
    fn missing_edge_is_an_error() {
        let mut c = diamond_tail();
        assert_eq!(
            c.remove_edge(NodeId(4), NodeId(0)),
            Err(UpdateError::NoSuchEdge(NodeId(4), NodeId(0)))
        );
    }

    #[test]
    fn insertion_after_relocation_stays_correct() {
        // The relocated subtree's old numbers are tombstoned; subsequent
        // insertions under the old parent must skip them.
        let mut c = diamond_tail();
        c.remove_edge(NodeId(1), NodeId(3)).unwrap();
        let n = c.add_node_with_parents(&[NodeId(1)]).unwrap();
        assert!(c.reaches(NodeId(1), n));
        assert!(c.reaches(NodeId(0), n));
        assert!(!c.reaches(NodeId(2), n));
        c.verify().unwrap();
        // And under the relocated subtree too.
        let m = c.add_node_with_parents(&[NodeId(3)]).unwrap();
        assert!(c.reaches(NodeId(2), m));
        c.verify().unwrap();
    }

    #[test]
    fn relabel_reclaims_tombstones() {
        let mut c = diamond_tail();
        c.remove_edge(NodeId(1), NodeId(3)).unwrap();
        let total_before = c.lab.line.total_count();
        assert!(total_before > c.node_count(), "tombstones present");
        c.relabel();
        assert_eq!(c.lab.line.total_count(), c.node_count());
        c.verify().unwrap();
    }

    #[test]
    fn remove_node_detaches_everything() {
        let mut c = diamond_tail();
        c.remove_node(NodeId(3)).unwrap();
        assert!(!c.reaches(NodeId(0), NodeId(4)), "only path went through 3");
        assert!(!c.reaches(NodeId(1), NodeId(3)));
        assert!(!c.reaches(NodeId(3), NodeId(4)));
        assert!(c.reaches(NodeId(3), NodeId(3)), "reflexivity survives");
        assert!(c.reaches(NodeId(0), NodeId(2)));
        c.verify().unwrap();
    }

    #[test]
    fn remove_node_then_reuse() {
        let mut c = diamond_tail();
        c.remove_node(NodeId(3)).unwrap();
        // The removed slot can re-enter the relation via new arcs.
        c.add_edge(NodeId(4), NodeId(3)).unwrap_or_else(|e| panic!("{e}"));
        assert!(c.reaches(NodeId(4), NodeId(3)));
        c.verify().unwrap();
    }

    #[test]
    fn random_delete_sequences_match_ground_truth() {
        use rand::rngs::StdRng;
        use rand::seq::IndexedRandom;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        for seed in 0..3 {
            let g = generators::random_dag(generators::RandomDagConfig {
                nodes: 25,
                avg_out_degree: 2.0,
                seed,
            });
            let mut c = ClosureConfig::new().gap(32).build(&g).unwrap();
            for _ in 0..15 {
                let edges: Vec<(NodeId, NodeId)> = c.graph().edges().collect();
                let Some(&(s, d)) = edges.choose(&mut rng) else { break };
                c.remove_edge(s, d).unwrap();
                c.verify()
                    .unwrap_or_else(|e| panic!("seed {seed} removing {s:?}->{d:?}: {e}"));
            }
        }
    }

    #[test]
    fn interleaved_adds_and_deletes() {
        use rand::rngs::StdRng;
        use rand::seq::IndexedRandom;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let g = generators::random_dag(generators::RandomDagConfig {
            nodes: 15,
            avg_out_degree: 1.5,
            seed: 9,
        });
        let mut c = ClosureConfig::new().gap(32).build(&g).unwrap();
        for step in 0..80 {
            match rng.random_range(0..3) {
                0 => {
                    let parents: Vec<NodeId> = (0..rng.random_range(0..3usize))
                        .map(|_| NodeId(rng.random_range(0..c.node_count() as u32)))
                        .collect();
                    c.add_node_with_parents(&parents).unwrap();
                }
                1 => {
                    let src = NodeId(rng.random_range(0..c.node_count() as u32));
                    let dst = NodeId(rng.random_range(0..c.node_count() as u32));
                    if src != dst && !c.reaches(dst, src) {
                        c.add_edge(src, dst).unwrap();
                    }
                }
                _ => {
                    let edges: Vec<(NodeId, NodeId)> = c.graph().edges().collect();
                    if let Some(&(s, d)) = edges.choose(&mut rng) {
                        c.remove_edge(s, d).unwrap();
                    }
                }
            }
            // Cheap structural audit every step; full verify periodically.
            c.audit().unwrap_or_else(|e| panic!("step {step}: audit: {e}"));
            if step % 20 == 19 {
                c.verify().unwrap_or_else(|e| panic!("step {step}: {e}"));
            }
        }
        c.verify().unwrap();
    }

    #[test]
    fn scoped_and_global_recompute_agree_interval_for_interval() {
        use rand::rngs::StdRng;
        use rand::seq::IndexedRandom;
        use rand::{Rng, SeedableRng};
        for seed in 0..4 {
            let g = generators::random_dag(generators::RandomDagConfig {
                nodes: 40,
                avg_out_degree: 2.5,
                seed,
            });
            for threads in [1usize, 2] {
                let base = ClosureConfig::new().gap(32).threads(threads);
                let mut scoped = base.scoped_deletes(true).build(&g).unwrap();
                let mut global = base.scoped_deletes(false).build(&g).unwrap();
                let mut rng = StdRng::seed_from_u64(seed ^ 0xD1E7);
                for _ in 0..25 {
                    if rng.random_bool(0.2) {
                        let node = NodeId(rng.random_range(0..scoped.node_count() as u32));
                        scoped.remove_node(node).unwrap();
                        global.remove_node(node).unwrap();
                    } else {
                        let edges: Vec<(NodeId, NodeId)> = scoped.graph().edges().collect();
                        let Some(&(s, d)) = edges.choose(&mut rng) else { break };
                        scoped.remove_edge(s, d).unwrap();
                        global.remove_edge(s, d).unwrap();
                    }
                    for v in scoped.graph().nodes() {
                        assert_eq!(
                            scoped.intervals(v),
                            global.intervals(v),
                            "seed {seed} threads {threads}: {v:?} diverged"
                        );
                    }
                    scoped.audit().unwrap();
                    global.audit().unwrap();
                }
            }
        }
    }

    #[test]
    fn repeated_remove_and_readd_at_the_top_of_the_line() {
        // Each round quarantines node 2 at the very top of the number line,
        // so the next removal tombstones the maximum slot and
        // `boundary_above_max()` must take its tombstone branch — the
        // fresh numbers it hands out must clear every live advertised tail.
        let g = DiGraph::from_edges([(0, 1), (1, 2)]);
        let mut c = ClosureConfig::new().gap(8).reserve(3).build(&g).unwrap();
        for round in 0..6 {
            c.remove_node(NodeId(2)).unwrap();
            c.audit().unwrap_or_else(|e| panic!("round {round} remove: {e}"));
            assert!(!c.reaches(NodeId(1), NodeId(2)));
            c.add_edge(NodeId(1), NodeId(2)).unwrap();
            c.audit().unwrap_or_else(|e| panic!("round {round} re-add: {e}"));
            assert!(c.reaches(NodeId(0), NodeId(2)));
            c.verify().unwrap_or_else(|e| panic!("round {round}: {e}"));
        }
        // Same churn through the tree-arc path: relocating the subtree {2}
        // tombstones the current maximum before renumbering from it.
        for round in 0..4 {
            let parent = c.cover().parent(NodeId(2));
            if let Some(p) = parent {
                c.remove_edge(p, NodeId(2)).unwrap();
            } else {
                c.remove_node(NodeId(2)).unwrap();
            }
            c.audit().unwrap_or_else(|e| panic!("tree round {round} remove: {e}"));
            if !c.graph().has_edge(NodeId(1), NodeId(2)) {
                c.add_edge(NodeId(1), NodeId(2)).unwrap();
            }
            c.verify().unwrap_or_else(|e| panic!("tree round {round}: {e}"));
        }
    }

    #[test]
    fn deleting_every_edge_leaves_reflexive_closure() {
        let mut c = diamond_tail();
        let edges: Vec<(NodeId, NodeId)> = c.graph().edges().collect();
        for (s, d) in edges {
            c.remove_edge(s, d).unwrap();
        }
        for u in c.graph().nodes() {
            assert_eq!(c.successors(u), vec![u]);
            assert_eq!(
                c.intervals(u).as_slice(),
                &[Interval::new(c.lab.low[u.index()], c.post_number(u))]
            );
        }
        c.verify().unwrap();
    }
}
