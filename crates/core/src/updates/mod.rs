//! Incremental updates (§4 of the paper).
//!
//! The closure absorbs base-relation updates without recomputing the whole
//! closure:
//!
//! * **Node + tree-arc addition** ([`crate::CompressedClosure::add_node_with_parents`]):
//!   the new leaf takes the midpoint of the number gap *owned* by its tree
//!   parent — no other label changes (§4.1 "Addition of a tree arc").
//!   Additional parents are handled "as an addition of a tree arc followed
//!   by an addition of a non-tree arc".
//! * **Non-tree arc addition** ([`crate::CompressedClosure::add_edge`]): the
//!   destination's intervals propagate to the source and its predecessors,
//!   stopping wherever subsumption leaves a node unchanged (§4.1 "Addition
//!   of a non-tree arc").
//! * **Constant-time hierarchy refinement**
//!   ([`crate::CompressedClosure::refine_insert`]): when a new node is
//!   interposed below *all* current predecessors of an existing node, it is
//!   placed in that node's *reserve tail* and **no interval anywhere
//!   changes** (§4.1's `z` example with interval `[11,25]`).
//! * **Arc deletion** ([`crate::CompressedClosure::remove_edge`]): deleting
//!   a non-tree arc re-derives the non-tree intervals with one reverse-
//!   topological sweep (§4.2). Deleting a tree arc additionally relocates
//!   the orphaned subtree to fresh numbers above the current maximum,
//!   tombstoning the old numbers (stale ancestor intervals still span them,
//!   so they must not be reused until a [`crate::CompressedClosure::relabel`]).
//!
//! ## A note on gap ownership
//!
//! The paper picks the insertion number from "the two postorder numbers
//! between n1 and n2 that ... have the largest difference". Read literally
//! that may select a gap interior to a *sibling's* subtree, which would
//! create false positives. This implementation follows the paper's running
//! example instead (x under b → number 35 = the midpoint of b's own gap
//! (30, 40), interval [31, 35]): every node owns exactly the unused region
//! between its last descendant (or its interval low) and its own number, and
//! new children are placed by repeated midpoint subdivision of that region.
//! See DESIGN.md §3.2.

mod add;
mod delete;
mod delta;
mod refine;

pub use delta::EdgeDelta;

use std::fmt;

use tc_graph::NodeId;

/// Errors from incremental update operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// An operand node does not exist.
    UnknownNode(NodeId),
    /// The arc would create a directed cycle (the destination already
    /// reaches the source).
    WouldCreateCycle {
        /// Requested arc source.
        src: NodeId,
        /// Requested arc destination.
        dst: NodeId,
    },
    /// Self-loops are not representable (reflexivity is implicit).
    SelfLoop(NodeId),
    /// The arc to remove does not exist.
    NoSuchEdge(NodeId, NodeId),
    /// `refine_insert` requires the new node's parents to be exactly the
    /// current immediate predecessors of the refined node; anything else
    /// would make the no-propagation shortcut unsound.
    RefineParentsMismatch {
        /// The node being refined.
        child: NodeId,
    },
    /// The refined node's reserve tail is exhausted; call
    /// [`crate::CompressedClosure::relabel`] (which replenishes every tail)
    /// and retry, or fall back to
    /// [`crate::CompressedClosure::add_node_with_parents`].
    ReserveExhausted(NodeId),
    /// The number line has reached its configured capacity
    /// ([`tc_interval::NumberLine::capacity`]); no new node can take a
    /// postorder number. Checked *before* any structure mutates, so the
    /// closure is unchanged. [`crate::CompressedClosure::relabel`] reclaims
    /// tombstoned positions; otherwise the capacity must be raised.
    NumberLineFull {
        /// Occupied positions (live + tombstoned).
        used: usize,
        /// The configured ceiling.
        capacity: usize,
    },
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            UpdateError::WouldCreateCycle { src, dst } => {
                write!(f, "arc ({src:?},{dst:?}) would create a cycle")
            }
            UpdateError::SelfLoop(n) => write!(f, "self loop on {n:?}"),
            UpdateError::NoSuchEdge(s, d) => write!(f, "no arc ({s:?},{d:?})"),
            UpdateError::RefineParentsMismatch { child } => write!(
                f,
                "refine_insert parents must be exactly the immediate predecessors of {child:?}"
            ),
            UpdateError::ReserveExhausted(n) => {
                write!(f, "reserve tail of {n:?} is exhausted; relabel and retry")
            }
            UpdateError::NumberLineFull { used, capacity } => write!(
                f,
                "number line full ({used}/{capacity} positions occupied); \
                 relabel to reclaim tombstones or raise the capacity"
            ),
        }
    }
}

impl std::error::Error for UpdateError {}

impl crate::CompressedClosure {
    /// Checks that `node` exists.
    pub(crate) fn check_node(&self, node: NodeId) -> Result<(), UpdateError> {
        if node.index() < self.graph.node_count() {
            Ok(())
        } else {
            Err(UpdateError::UnknownNode(node))
        }
    }

    /// The open number region `(start, post(parent))` into which new tree
    /// children of `parent` are inserted. `start` is the highest committed
    /// boundary below the parent's number: the advertised top of the
    /// parent's last descendant (skipping its refinement tail), a tombstone,
    /// or the parent's own interval low minus one — whichever is greatest.
    pub(crate) fn insertion_region(&self, parent: NodeId) -> (u64, u64) {
        let hi = self.lab.post[parent.index()];
        let raw = self.lab.line.prev_used(hi).unwrap_or(0);
        let mut start = raw;
        if let Some(node) = self.lab.line.node_at(raw) {
            start = start.max(self.lab.advertised_hi[node as usize]);
        }
        start = start.max(self.lab.low[parent.index()].saturating_sub(1));
        debug_assert!(start < hi);
        (start, hi)
    }

    /// Re-derives every non-tree interval with one reverse-topological
    /// sweep over the current graph, keeping numbers, tree intervals and
    /// consumed reserve tails as they are. Used by arc deletion (§4.2).
    pub(crate) fn recompute_non_tree(&mut self) {
        self.lab.reset_sets();
        crate::propagate::propagate_dispatch(&self.graph, &mut self.lab, self.config.threads);
        self.apply_merge_policy();
    }

    /// Scoped counterpart of [`Self::recompute_non_tree`] (§4.2 locality):
    /// only nodes that can reach a deletion's origin can have their
    /// non-tree intervals change, so the reverse-topological sweep is
    /// restricted to `seeds ∪ predecessors*(seeds)` over the (already
    /// updated) base graph, with every other node's set treated as a frozen
    /// input. Deletion paths seed this with every node whose outgoing
    /// reachability or number changed: the removed arc's source, relocated
    /// subtree members and stragglers, a quarantined point label's old
    /// holder, a removed node's former predecessors.
    ///
    /// Falls back to the global sweep when
    /// [`crate::ClosureConfig::scoped_deletes`] is off — the differential
    /// fuzzer runs both settings as cross-check oracles of each other.
    pub(crate) fn recompute_non_tree_scoped(&mut self, seeds: &[NodeId]) {
        if !self.config.scoped_deletes {
            self.recompute_non_tree();
            return;
        }
        let n = self.graph.node_count();
        // Affected region: seeds plus everything that reaches one, by one
        // reverse DFS over the base graph. A node outside this region
        // reaches no affected node at all (otherwise it would reach a seed
        // through it), so both its reachable set and its interval
        // representation are already at the post-deletion fixed point.
        let mut affected = vec![false; n];
        let mut region: Vec<NodeId> = Vec::new();
        let mut stack: Vec<NodeId> = Vec::new();
        for &s in seeds {
            if !std::mem::replace(&mut affected[s.index()], true) {
                region.push(s);
                stack.push(s);
            }
        }
        while let Some(v) = stack.pop() {
            for &p in self.graph.predecessors(v) {
                if !std::mem::replace(&mut affected[p.index()], true) {
                    region.push(p);
                    stack.push(p);
                }
            }
        }
        // Induced reverse-topological order: DFS finish order over the
        // region following affected successors only (in a DAG the head of
        // every arc finishes before its tail). Paths between affected nodes
        // never leave the region, so this order is sufficient.
        let mut order: Vec<NodeId> = Vec::with_capacity(region.len());
        let mut visited = vec![false; n];
        let mut walk: Vec<(NodeId, usize)> = Vec::new();
        for &r in &region {
            if visited[r.index()] {
                continue;
            }
            visited[r.index()] = true;
            walk.push((r, 0));
            while let Some(&mut (v, ref mut next)) = walk.last_mut() {
                let succ = self.graph.successors(v);
                if *next < succ.len() {
                    let q = succ[*next];
                    *next += 1;
                    if affected[q.index()] && !visited[q.index()] {
                        visited[q.index()] = true;
                        walk.push((q, 0));
                    }
                } else {
                    order.push(v);
                    walk.pop();
                }
            }
        }
        // Reset only the region to tree singletons, re-propagate it against
        // the frozen remainder, and keep the merge policy scoped to it too.
        for &v in &order {
            self.lab.sets[v.index()] = tc_interval::IntervalSet::singleton(
                tc_interval::Interval::new(self.lab.low[v.index()], self.lab.post[v.index()]),
            );
        }
        crate::propagate::propagate_scoped_dispatch(
            &self.graph,
            &order,
            &mut self.lab,
            self.config.threads,
        );
        if self.config.merge_adjacent {
            for &v in &order {
                self.lab.sets[v.index()].merge_adjacent();
            }
        }
    }
}
