//! Constant-time hierarchy refinement (§4.1).
//!
//! "In the case of concept hierarchies in AI systems, when a new node is
//! added and connected to existing nodes, the reachability set of the
//! existing nodes is unchanged (except that some nodes may now reach this
//! new node also). Such updates frequently take place while 'refining' a
//! hierarchy. … one can provide an additional gap beyond the postorder
//! number in the tree interval associated with a node. Thus, h's interval
//! could have been made [11,25] … Now when z is added, and if it is assigned
//! a postorder number between 21 and 25, no update is required in both of
//! its predecessors e and x, making hierarchy refinement a constant time
//! operation."
//!
//! Soundness requires that the refining node's parents be **exactly the
//! current immediate predecessors** of the refined node: those are the nodes
//! (together with everything above them) whose inherited copies of the
//! refined node's advertised interval cover the reserve tail. The tail is
//! consumed **top-down** so that copies taken *after* a refinement (whose
//! advertised top has shrunk) do not cover earlier refinements they have no
//! path to.

use tc_graph::NodeId;
use tc_interval::{Interval, IntervalSet};

use crate::propagate::inherit_into_scratch;
use crate::updates::UpdateError;
use crate::CompressedClosure;

impl CompressedClosure {
    /// Numbers still available in `node`'s refinement reserve tail.
    pub fn reserve_remaining(&self, node: NodeId) -> u64 {
        self.lab.advertised_hi[node.index()] - self.lab.post[node.index()]
    }

    /// Interposes a new node `z` between `parents` and `child`: adds arcs
    /// `p -> z` for every parent and `z -> child`, **without updating any
    /// existing interval** — constant time beyond the arc insertions.
    ///
    /// `parents` must be exactly the current immediate predecessors of
    /// `child` (in any order); otherwise [`UpdateError::RefineParentsMismatch`]
    /// is returned, because a parent that never inherited `child`'s
    /// advertised interval would not see `z`. If `child`'s reserve tail is
    /// exhausted, returns [`UpdateError::ReserveExhausted`]; call
    /// [`CompressedClosure::relabel`] (which replenishes every tail) and
    /// retry.
    ///
    /// The original `parent -> child` arcs are kept, exactly as in the
    /// paper's Fig 4.2 (reachability is identical either way).
    pub fn refine_insert(
        &mut self,
        child: NodeId,
        parents: &[NodeId],
    ) -> Result<NodeId, UpdateError> {
        self.check_node(child)?;
        for &p in parents {
            self.check_node(p)?;
        }

        // Parents must be exactly the immediate predecessors of `child`.
        let mut want: Vec<NodeId> = parents.to_vec();
        want.sort_unstable();
        want.dedup();
        let mut have: Vec<NodeId> = self.graph.predecessors(child).to_vec();
        have.sort_unstable();
        if want != have {
            return Err(UpdateError::RefineParentsMismatch { child });
        }

        // Consume the top of the reserve tail.
        let num = self.lab.advertised_hi[child.index()];
        if num == self.lab.post[child.index()] {
            return Err(UpdateError::ReserveExhausted(child));
        }
        // z occupies one fresh number-line position; check capacity before
        // the first mutation so a full line leaves the closure untouched.
        if self.lab.line.total_count() >= self.lab.line.capacity() {
            return Err(UpdateError::NumberLineFull {
                used: self.lab.line.total_count(),
                capacity: self.lab.line.capacity(),
            });
        }
        self.invalidate_plane();
        self.lab.advertised_hi[child.index()] = num - 1;

        // Materialize z. Its own label is the single point [num, num]; it
        // additionally inherits child's (freshly shrunk) advertised set so
        // that z -> child queries work — and so z sees future refinements,
        // in which it will participate as a predecessor.
        let z = self.graph.add_node();
        let tree_parent = want.first().copied();
        let in_cover = self.cover.push_node(tree_parent);
        debug_assert_eq!(z, in_cover);
        self.lab.post.push(num);
        self.lab.low.push(num);
        self.lab.advertised_hi.push(num); // refinement nodes carry no tail
        self.lab.line.assign(num, z.0);

        let mut set = IntervalSet::singleton(Interval::point(num));
        let mut scratch = Vec::new();
        inherit_into_scratch(&self.lab, child, &mut scratch);
        for iv in scratch {
            set.insert(iv);
        }
        self.lab.sets.push(set);

        // The arcs themselves. No propagation: every predecessor's copy of
        // child's advertised interval already covers `num`.
        for &p in &want {
            self.graph.add_edge(p, z);
        }
        self.graph.add_edge(z, child);
        Ok(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClosureConfig, CompressedClosure};
    use tc_graph::DiGraph;

    /// The paper's Fig 4.2 situation: h (node 3) reachable from e (node 1,
    /// its tree parent) and x (node 2, a non-tree predecessor).
    fn fig42() -> CompressedClosure {
        let g = DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3)]);
        ClosureConfig::new().gap(16).reserve(5).build(&g).unwrap()
    }

    #[test]
    fn refine_is_no_propagation_and_correct() {
        let mut c = fig42();
        let before: Vec<usize> = (0..4).map(|i| c.intervals(NodeId(i)).count()).collect();
        let z = c.refine_insert(NodeId(3), &[NodeId(1), NodeId(2)]).unwrap();
        // No existing node's interval set changed — the constant-time claim.
        for (i, &count) in before.iter().enumerate() {
            assert_eq!(c.intervals(NodeId(i as u32)).count(), count, "node {i} changed");
        }
        // Reachability is exactly an interposition.
        assert!(c.reaches(NodeId(1), z));
        assert!(c.reaches(NodeId(2), z));
        assert!(c.reaches(NodeId(0), z));
        assert!(c.reaches(z, NodeId(3)));
        assert!(!c.reaches(NodeId(3), z));
        c.verify().unwrap();
    }

    #[test]
    fn repeated_refinement_consumes_tail_top_down() {
        let mut c = fig42();
        let top = c.post_number(NodeId(3)) + 5;
        let z1 = c.refine_insert(NodeId(3), &[NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(c.post_number(z1), top);
        // Second refinement: preds of 3 now include z1.
        let z2 = c
            .refine_insert(NodeId(3), &[NodeId(1), NodeId(2), z1])
            .unwrap();
        assert_eq!(c.post_number(z2), top - 1);
        // z1, being a predecessor at z2's insertion, must reach z2 — via the
        // shrunk advertised copy it inherited, with no propagation.
        assert!(c.reaches(z1, z2));
        assert!(!c.reaches(z2, z1));
        c.verify().unwrap();
    }

    #[test]
    fn tail_exhaustion_reported_then_relabel_recovers() {
        let g = DiGraph::from_edges([(0, 1)]);
        let mut c = ClosureConfig::new().gap(8).reserve(2).build(&g).unwrap();
        let mut preds = vec![NodeId(0)];
        for _ in 0..2 {
            let z = c.refine_insert(NodeId(1), &preds).unwrap();
            preds.push(z);
        }
        assert_eq!(
            c.refine_insert(NodeId(1), &preds),
            Err(UpdateError::ReserveExhausted(NodeId(1)))
        );
        c.relabel();
        assert_eq!(c.reserve_remaining(NodeId(1)), 2, "relabel replenishes tails");
        let z = c.refine_insert(NodeId(1), &preds).unwrap();
        assert!(c.reaches(NodeId(0), z));
        c.verify().unwrap();
    }

    #[test]
    fn full_number_line_blocks_refinement_before_any_mutation() {
        let mut c = fig42(); // reserve(5): the tail check passes, capacity fails
        let used = c.lab.line.total_count();
        c.lab.line.set_capacity(used);
        let tails_before = c.lab.advertised_hi.clone();
        assert_eq!(
            c.refine_insert(NodeId(3), &[NodeId(1), NodeId(2)]),
            Err(UpdateError::NumberLineFull {
                used,
                capacity: used
            })
        );
        assert_eq!(
            c.lab.advertised_hi, tails_before,
            "no tail may be consumed on a failed refinement"
        );
        c.verify().unwrap();
    }

    #[test]
    fn wrong_parent_set_is_rejected() {
        let mut c = fig42();
        // Missing predecessor 2.
        assert_eq!(
            c.refine_insert(NodeId(3), &[NodeId(1)]),
            Err(UpdateError::RefineParentsMismatch { child: NodeId(3) })
        );
        // Extraneous parent 0 (not an immediate predecessor).
        assert_eq!(
            c.refine_insert(NodeId(3), &[NodeId(0), NodeId(1), NodeId(2)]),
            Err(UpdateError::RefineParentsMismatch { child: NodeId(3) })
        );
    }

    #[test]
    fn refine_root_with_no_predecessors() {
        let g = DiGraph::from_edges([(0, 1)]);
        let mut c = ClosureConfig::new().gap(8).reserve(2).build(&g).unwrap();
        // Node 0 has no predecessors: refining it interposes a new root.
        let z = c.refine_insert(NodeId(0), &[]).unwrap();
        assert!(c.reaches(z, NodeId(0)));
        assert!(c.reaches(z, NodeId(1)));
        assert!(!c.reaches(NodeId(0), z));
        c.verify().unwrap();
    }

    #[test]
    fn later_arcs_into_refined_node_do_not_leak_past_refinements() {
        // q gains an arc into child AFTER a refinement; q must reach child
        // but NOT the earlier z (there is no path q -> z).
        let g = DiGraph::from_edges([(0, 1), (2, 3)]);
        let mut c = ClosureConfig::new().gap(16).reserve(4).build(&g).unwrap();
        let z = c.refine_insert(NodeId(1), &[NodeId(0)]).unwrap();
        c.add_edge(NodeId(3), NodeId(1)).unwrap();
        assert!(c.reaches(NodeId(3), NodeId(1)));
        assert!(!c.reaches(NodeId(3), z), "post-hoc predecessor must not see old refinement");
        // But node 3 participates in the NEXT refinement and sees it.
        let z2 = c.refine_insert(NodeId(1), &[NodeId(0), z, NodeId(3)]).unwrap();
        assert!(c.reaches(NodeId(3), z2));
        assert!(c.reaches(z, z2));
        c.verify().unwrap();
    }

    #[test]
    fn no_reserve_configured_means_immediate_exhaustion() {
        let g = DiGraph::from_edges([(0, 1)]);
        let mut c = ClosureConfig::new().gap(8).build(&g).unwrap();
        assert_eq!(
            c.refine_insert(NodeId(1), &[NodeId(0)]),
            Err(UpdateError::ReserveExhausted(NodeId(1)))
        );
    }

    #[test]
    fn children_of_refinement_nodes_insert_correctly() {
        // A refinement node lives inside another node's reserve tail; its
        // own child-insertion region must not collide with the remaining
        // tail (future refinements) or with neighbors.
        let mut c = fig42();
        let z = c.refine_insert(NodeId(3), &[NodeId(1), NodeId(2)]).unwrap();
        let kid = c.add_node_with_parents(&[z]).unwrap();
        assert!(c.reaches(z, kid));
        assert!(c.reaches(NodeId(1), kid), "grandparents reach through z");
        assert!(!c.reaches(NodeId(3), kid));
        c.verify().unwrap();
        // A later refinement of the same child must still be disjoint.
        let z2 = c.refine_insert(NodeId(3), &[NodeId(1), NodeId(2), z]).unwrap();
        assert!(!c.reaches(kid, z2));
        assert!(c.reaches(z, z2));
        c.verify().unwrap();
    }

    #[test]
    fn updates_after_refinement_stay_consistent() {
        let mut c = fig42();
        let z = c.refine_insert(NodeId(3), &[NodeId(1), NodeId(2)]).unwrap();
        // Ordinary leaf insertion under the refined node's parent.
        let n = c.add_node_with_parents(&[NodeId(1)]).unwrap();
        assert!(!c.reaches(n, z));
        // Deletion recomputation keeps refinement reachability intact.
        c.remove_edge(NodeId(2), NodeId(3)).unwrap();
        assert!(c.reaches(NodeId(2), z), "arc (2,z) still exists");
        assert!(c.reaches(z, NodeId(3)));
        c.verify().unwrap();
    }
}
