//! Delta-reporting arc updates for incremental inference clients.
//!
//! A rule engine doing semi-naive evaluation needs to know exactly which
//! reachability pairs an arc update flipped: newly-true pairs seed the next
//! forward-chaining round, newly-false pairs seed over-deletion. For the arc
//! `(src, dst)` the candidates are precisely `predecessors*(src) ×
//! successors*(dst)` — any pair outside that rectangle has the same witness
//! paths before and after the update — so both hooks capture the rectangle
//! against the *pre-update* closure, apply the regular §4 update
//! (`add_edge` / `remove_edge`, the latter running the scoped §4.2
//! recompute), and report the pairs whose truth value moved.

use tc_graph::NodeId;

use crate::updates::UpdateError;
use crate::CompressedClosure;

/// The reachability pairs flipped by one arc update.
///
/// `sources` and `targets` are the affected rectangle's axes as captured
/// before the update: every node that reached the arc's source (including
/// the source itself) and every node the arc's destination reached
/// (including the destination). `changed` lists the `(from, to)` pairs
/// within that rectangle whose `reaches` answer differs across the update —
/// all newly true for an addition, all newly false for a removal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeDelta {
    /// `predecessors*(src)` at capture time, source included.
    pub sources: Vec<NodeId>,
    /// `successors*(dst)` at capture time, destination included.
    pub targets: Vec<NodeId>,
    /// Pairs whose reachability flipped, in `(sources × targets)` order.
    pub changed: Vec<(NodeId, NodeId)>,
}

impl CompressedClosure {
    /// [`Self::add_edge`] that also reports every reachability pair the arc
    /// made true. A duplicate arc is a no-op with an empty delta; cycle and
    /// validation failures are the same errors `add_edge` raises, with the
    /// closure untouched.
    pub fn add_edge_delta(&mut self, src: NodeId, dst: NodeId) -> Result<EdgeDelta, UpdateError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        if src == dst {
            return Err(UpdateError::SelfLoop(src));
        }
        if self.graph().has_edge(src, dst) {
            return Ok(EdgeDelta::default());
        }
        if self.reaches(dst, src) {
            return Err(UpdateError::WouldCreateCycle { src, dst });
        }
        let sources = self.predecessors(src);
        let targets = self.successors(dst);
        let pairs = rectangle(&sources, &targets);
        let before = self.reaches_batch(&pairs);
        let inserted = self.add_edge(src, dst)?;
        debug_assert!(inserted, "duplicate arcs were handled above");
        // After the addition every pair in the rectangle is true (from
        // reaches src, src -> dst, dst reaches to), so the flips are exactly
        // the previously-false pairs — no second probe pass needed.
        let changed = pairs
            .into_iter()
            .zip(before)
            .filter_map(|(pair, was)| (!was).then_some(pair))
            .collect();
        Ok(EdgeDelta {
            sources,
            targets,
            changed,
        })
    }

    /// [`Self::remove_edge`] that also reports every reachability pair the
    /// removal made false (pairs with a surviving witness path stay out of
    /// `changed`). Runs the scoped §4.2 recompute internally, exactly like
    /// `remove_edge`.
    pub fn remove_edge_delta(
        &mut self,
        src: NodeId,
        dst: NodeId,
    ) -> Result<EdgeDelta, UpdateError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        if !self.graph().has_edge(src, dst) {
            return Err(UpdateError::NoSuchEdge(src, dst));
        }
        let sources = self.predecessors(src);
        let targets = self.successors(dst);
        let pairs = rectangle(&sources, &targets);
        self.remove_edge(src, dst)?;
        // Every rectangle pair was true before (witnessed through the arc
        // itself); the flips are the pairs that lost their last witness.
        let after = self.reaches_batch(&pairs);
        let changed = pairs
            .into_iter()
            .zip(after)
            .filter_map(|(pair, still)| (!still).then_some(pair))
            .collect();
        Ok(EdgeDelta {
            sources,
            targets,
            changed,
        })
    }
}

fn rectangle(sources: &[NodeId], targets: &[NodeId]) -> Vec<(NodeId, NodeId)> {
    let mut pairs = Vec::with_capacity(sources.len() * targets.len());
    for &s in sources {
        for &t in targets {
            pairs.push((s, t));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClosureConfig;
    use std::collections::BTreeSet;
    use tc_graph::{generators, DiGraph};

    fn diamond() -> CompressedClosure {
        let g = DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3)]);
        ClosureConfig::new().gap(16).build(&g).unwrap()
    }

    fn pair_set(c: &CompressedClosure) -> BTreeSet<(u32, u32)> {
        let mut out = BTreeSet::new();
        for u in c.graph().nodes() {
            for v in c.successors(u) {
                out.insert((u.0, v.0));
            }
        }
        out
    }

    #[test]
    fn add_delta_reports_exactly_the_new_pairs() {
        let mut c = diamond();
        let tail = c.add_node_with_parents(&[]).unwrap();
        let before = pair_set(&c);
        let delta = c.add_edge_delta(NodeId(3), tail).unwrap();
        let after = pair_set(&c);
        let flipped: BTreeSet<(u32, u32)> =
            delta.changed.iter().map(|&(a, b)| (a.0, b.0)).collect();
        let expected: BTreeSet<(u32, u32)> = after.difference(&before).copied().collect();
        assert_eq!(flipped, expected);
        assert_eq!(flipped.len(), 4, "0,1,2,3 newly reach the tail; (tail,tail) was reflexive");
        c.verify().unwrap();
    }

    #[test]
    fn add_delta_skips_already_true_pairs() {
        let mut c = diamond();
        // 0 already reaches 3 through 1; the direct arc adds no pairs.
        let delta = c.add_edge_delta(NodeId(0), NodeId(3)).unwrap();
        assert!(delta.changed.is_empty());
        assert!(!delta.sources.is_empty() && !delta.targets.is_empty());
        c.verify().unwrap();
    }

    #[test]
    fn duplicate_add_is_an_empty_delta() {
        let mut c = diamond();
        let delta = c.add_edge_delta(NodeId(0), NodeId(1)).unwrap();
        assert!(delta.changed.is_empty() && delta.sources.is_empty());
    }

    #[test]
    fn add_delta_rejects_cycles_without_mutating() {
        let mut c = diamond();
        let before = pair_set(&c);
        assert_eq!(
            c.add_edge_delta(NodeId(3), NodeId(0)),
            Err(UpdateError::WouldCreateCycle {
                src: NodeId(3),
                dst: NodeId(0)
            })
        );
        assert_eq!(pair_set(&c), before);
    }

    #[test]
    fn remove_delta_reports_exactly_the_lost_pairs() {
        let mut c = diamond();
        let before = pair_set(&c);
        // (1,3) removal loses nothing: 3 is still reachable through 2.
        let delta = c.remove_edge_delta(NodeId(1), NodeId(3)).unwrap();
        let kept: BTreeSet<(u32, u32)> = pair_set(&c);
        let flipped: BTreeSet<(u32, u32)> =
            delta.changed.iter().map(|&(a, b)| (a.0, b.0)).collect();
        let expected: BTreeSet<(u32, u32)> = before.difference(&kept).copied().collect();
        assert_eq!(flipped, expected);
        assert_eq!(flipped, BTreeSet::from([(1, 3)]), "only 1 itself loses 3");
        // Now (2,3) really disconnects 3 from everything above it.
        let delta = c.remove_edge_delta(NodeId(2), NodeId(3)).unwrap();
        let flipped: BTreeSet<(u32, u32)> =
            delta.changed.iter().map(|&(a, b)| (a.0, b.0)).collect();
        assert_eq!(flipped, BTreeSet::from([(0, 3), (2, 3)]));
        c.verify().unwrap();
    }

    #[test]
    fn remove_delta_missing_edge_errors() {
        let mut c = diamond();
        assert_eq!(
            c.remove_edge_delta(NodeId(3), NodeId(0)),
            Err(UpdateError::NoSuchEdge(NodeId(3), NodeId(0)))
        );
    }

    #[test]
    fn random_add_remove_deltas_match_ground_truth_diffs() {
        use rand::rngs::StdRng;
        use rand::seq::IndexedRandom;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for seed in 0..3 {
            let g = generators::random_dag(generators::RandomDagConfig {
                nodes: 18,
                avg_out_degree: 1.8,
                seed,
            });
            let mut c = ClosureConfig::new().gap(32).build(&g).unwrap();
            for step in 0..60 {
                let before = pair_set(&c);
                let reported: Option<BTreeSet<(u32, u32)>> = if rng.random_bool(0.6) {
                    let src = NodeId(rng.random_range(0..c.node_count() as u32));
                    let dst = NodeId(rng.random_range(0..c.node_count() as u32));
                    if src == dst || c.reaches(dst, src) {
                        continue;
                    }
                    let d = c.add_edge_delta(src, dst).unwrap();
                    Some(d.changed.iter().map(|&(a, b)| (a.0, b.0)).collect())
                } else {
                    let edges: Vec<(NodeId, NodeId)> = c.graph().edges().collect();
                    let Some(&(s, d)) = edges.choose(&mut rng) else { continue };
                    let d = c.remove_edge_delta(s, d).unwrap();
                    Some(d.changed.iter().map(|&(a, b)| (a.0, b.0)).collect())
                };
                let after = pair_set(&c);
                let expected: BTreeSet<(u32, u32)> = before
                    .symmetric_difference(&after)
                    .copied()
                    .collect();
                assert_eq!(
                    reported.unwrap(),
                    expected,
                    "seed {seed} step {step}: delta disagrees with ground truth"
                );
                if step % 20 == 19 {
                    c.verify().unwrap();
                }
            }
        }
    }
}
