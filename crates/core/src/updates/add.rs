//! Additions: new nodes (tree arcs) and new non-tree arcs (§4.1).

use tc_graph::{BitSet, NodeId};
use tc_interval::Interval;

use crate::propagate::inherit_into_scratch;
use crate::updates::UpdateError;
use crate::CompressedClosure;

impl CompressedClosure {
    /// Adds a new node with arcs from every node in `parents`, returning the
    /// new node's id.
    ///
    /// With a non-empty parent list, `parents[0]` becomes the tree parent
    /// and the new leaf takes the midpoint of the gap owned by it — constant
    /// work beyond the arc insertions themselves. Remaining parents are
    /// processed "as an addition of a tree arc followed by an addition of a
    /// non-tree arc" (§4.1). With an empty list the node becomes a new
    /// forest root.
    ///
    /// If the parent's gap is exhausted, the closure relabels itself
    /// (keeping the tree cover) and retries — §4.1 "What if empty numbers
    /// run out". A configured gap too tight for any fresh midpoint (e.g.
    /// `gap(1)`, the paper's contiguous §3 numbering) is escalated during
    /// the relabel so insertion always succeeds.
    pub fn add_node_with_parents(&mut self, parents: &[NodeId]) -> Result<NodeId, UpdateError> {
        // Exact, order-preserving dedup (`Vec::dedup` only strips *adjacent*
        // duplicates, so `[a, b, a]` would leak `a` into the non-tree-arc
        // loop below). Parent lists are short; the quadratic scan wins over
        // hashing here.
        let mut deduped: Vec<NodeId> = Vec::with_capacity(parents.len());
        for &p in parents {
            if !deduped.contains(&p) {
                deduped.push(p);
            }
        }
        let parents = deduped;
        for &p in &parents {
            self.check_node(p)?;
        }
        self.invalidate_plane();

        let node = match parents.first() {
            None => self.insert_root()?,
            Some(&tree_parent) => self.insert_leaf_under(tree_parent)?,
        };
        // Remaining parents contribute non-tree arcs.
        for &p in parents.iter().skip(1) {
            self.add_edge(p, node)?;
        }
        Ok(node)
    }

    /// Adds the arc `src -> dst` between existing nodes as a *non-tree* arc,
    /// propagating `dst`'s intervals to `src` and its predecessors with the
    /// paper's subsumption cut-off. Returns `true` if the arc was new.
    ///
    /// Fails if the arc would create a cycle (checked with one closure
    /// lookup: does `dst` already reach `src`?).
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) -> Result<bool, UpdateError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        if src == dst {
            return Err(UpdateError::SelfLoop(src));
        }
        if self.graph.has_edge(src, dst) {
            return Ok(false);
        }
        if self.reaches(dst, src) {
            return Err(UpdateError::WouldCreateCycle { src, dst });
        }
        self.invalidate_plane();
        self.graph.add_edge(src, dst);
        self.propagate_from(dst, src);
        Ok(true)
    }

    /// Propagates `origin`'s inheritable intervals to `first` and onward to
    /// predecessors, stopping at nodes where every interval was already
    /// subsumed ("if no new interval is added to a node, the effect need not
    /// be propagated to the predecessors of this node").
    pub(crate) fn propagate_from(&mut self, origin: NodeId, first: NodeId) {
        let mut scratch = Vec::new();
        inherit_into_scratch(&self.lab, origin, &mut scratch);

        let mut queued = BitSet::new(self.graph.node_count());
        queued.insert(first.index());
        let mut worklist = vec![first];
        while let Some(x) = worklist.pop() {
            let mut changed = false;
            for &iv in &scratch {
                changed |= self.lab.sets[x.index()].insert(iv);
            }
            if changed {
                for &p in self.graph.predecessors(x) {
                    if queued.insert(p.index()) {
                        worklist.push(p);
                    }
                }
            }
        }
    }

    /// Inserts a new forest root above every existing number.
    fn insert_root(&mut self) -> Result<NodeId, UpdateError> {
        let boundary = self.boundary_above_max();
        let num = boundary + self.config.gap;
        let low = boundary + 1;
        self.push_labeled_node(None, num, low, self.config.reserve)
    }

    /// Inserts a new leaf in the gap owned by `parent` (§4.1: number 35,
    /// interval [31,35] for the paper's `x` under `b`).
    fn insert_leaf_under(&mut self, parent: NodeId) -> Result<NodeId, UpdateError> {
        let (mut start, mut hi) = self.insertion_region(parent);
        let num = match self.lab.line.midpoint_in(start, hi) {
            Some(num) => num,
            None => loop {
                // Gap exhausted: relabel with fresh gaps and retry (§4.1
                // "What if empty numbers run out"). A configured gap can be
                // too tight to admit a midpoint even when fresh — a region of
                // width `gap - reserve` needs at least one free interior
                // integer — so escalate it until the retry succeeds.
                self.relabel();
                (start, hi) = self.insertion_region(parent);
                match self.lab.line.midpoint_in(start, hi) {
                    Some(num) => break num,
                    None => {
                        self.config.gap = self
                            .config
                            .gap
                            .saturating_mul(2)
                            .max(2 * (self.config.reserve + 1));
                    }
                }
            },
        };
        let tail = self.config.reserve.min(hi.saturating_sub(num + 1));
        let node = self.push_labeled_node(Some(parent), num, start + 1, tail)?;
        self.graph.add_edge(parent, node);
        debug_assert!(self.reaches(parent, node));
        Ok(node)
    }

    /// Appends a node to every parallel structure with the given labels.
    ///
    /// The number-line capacity is checked *before* anything mutates, so a
    /// [`UpdateError::NumberLineFull`] leaves the closure exactly as it was.
    fn push_labeled_node(
        &mut self,
        tree_parent: Option<NodeId>,
        num: u64,
        low: u64,
        tail: u64,
    ) -> Result<NodeId, UpdateError> {
        if self.lab.line.total_count() >= self.lab.line.capacity() {
            return Err(UpdateError::NumberLineFull {
                used: self.lab.line.total_count(),
                capacity: self.lab.line.capacity(),
            });
        }
        let node = self.graph.add_node();
        let in_cover = self.cover.push_node(tree_parent);
        debug_assert_eq!(node, in_cover);
        self.lab.post.push(num);
        self.lab.low.push(low);
        self.lab.advertised_hi.push(num + tail);
        self.lab
            .sets
            .push(tc_interval::IntervalSet::singleton(Interval::new(low, num)));
        self.lab.line.assign(num, node.0);
        Ok(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClosureConfig, CompressedClosure};
    use tc_graph::{generators, DiGraph};

    /// The Fig 4.1 graph skeleton: a -> {b, c}; b -> {d?}; we model the
    /// paper's a/b/c/... shape with a small tree plus one non-tree arc.
    fn base() -> CompressedClosure {
        let g = DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3)]);
        ClosureConfig::new().gap(10).build(&g).unwrap()
    }

    #[test]
    fn paper_fig_4_1_midpoint_numbers() {
        // Rebuild the paper's exact scenario: node b has postorder number 30
        // in Fig 4.1 and a free region (30, 40); adding x under it yields
        // number 35 and interval [31,35]; then y under c gets the midpoint
        // of its region.
        let g = DiGraph::from_edges([(0, 1), (0, 2)]); // a -> b, a -> c
        let mut c = ClosureConfig::new().gap(10).build(&g).unwrap();
        // Postorder: b=10, c=20, a=30.
        let b = NodeId(1);
        assert_eq!(c.post_number(b), 10);
        let x = c.add_node_with_parents(&[b]).unwrap();
        // b owns (0+?, 10): low(b)=1, so region is (0,10) -> midpoint 5,
        // interval [1,5].
        assert_eq!(c.post_number(x), 5);
        assert_eq!(c.tree_interval(x), Interval::new(1, 5));
        assert!(c.reaches(b, x));
        assert!(c.reaches(NodeId(0), x));
        assert!(!c.reaches(NodeId(2), x));
        c.verify().unwrap();
    }

    #[test]
    fn repeated_insertions_subdivide_the_gap() {
        let mut c = base();
        let parent = NodeId(1);
        let mut last = None;
        for _ in 0..6 {
            let n = c.add_node_with_parents(&[parent]).unwrap();
            assert!(c.reaches(parent, n));
            last = Some(n);
        }
        c.verify().unwrap();
        // All six leaves are distinct successors of the parent.
        assert!(c.successor_count(parent) >= 7);
        assert!(c.reaches(NodeId(0), last.unwrap()));
    }

    #[test]
    fn gap_exhaustion_triggers_relabel() {
        // gap 2 floods instantly: every insertion beyond the first must
        // relabel, and queries must stay correct throughout.
        let g = DiGraph::from_edges([(0, 1)]);
        let mut c = ClosureConfig::new().gap(2).build(&g).unwrap();
        for _ in 0..10 {
            let n = c.add_node_with_parents(&[NodeId(1)]).unwrap();
            assert!(c.reaches(NodeId(0), n));
        }
        c.verify().unwrap();
        assert_eq!(c.node_count(), 12);
    }

    #[test]
    fn full_number_line_errors_without_corrupting_state() {
        let mut c = base();
        let used = c.lab.line.total_count();
        c.lab.line.set_capacity(used);
        let nodes_before = c.node_count();
        // Leaf path: fails loudly, no panic, nothing mutates.
        let err = c.add_node_with_parents(&[NodeId(1)]).unwrap_err();
        assert_eq!(
            err,
            UpdateError::NumberLineFull {
                used,
                capacity: used
            }
        );
        assert_eq!(c.node_count(), nodes_before);
        c.verify().unwrap();
        // Root path hits the same guard.
        assert!(matches!(
            c.add_node_with_parents(&[]),
            Err(UpdateError::NumberLineFull { .. })
        ));
        // One more slot admits exactly one more node.
        c.lab.line.set_capacity(used + 1);
        let n = c.add_node_with_parents(&[NodeId(0)]).unwrap();
        assert!(c.reaches(NodeId(0), n));
        assert!(matches!(
            c.add_node_with_parents(&[]),
            Err(UpdateError::NumberLineFull { .. })
        ));
        c.verify().unwrap();
    }

    #[test]
    fn relabel_preserves_configured_capacity() {
        let mut c = base();
        c.lab.line.set_capacity(100);
        c.relabel();
        assert_eq!(c.lab.line.capacity(), 100, "relabel must carry the ceiling");
        c.verify().unwrap();
    }

    #[test]
    fn new_root_insertion() {
        let mut c = base();
        let r = c.add_node_with_parents(&[]).unwrap();
        assert!(c.reaches(r, r));
        assert!(!c.reaches(r, NodeId(0)));
        assert!(!c.reaches(NodeId(0), r));
        // The new root can adopt children.
        let child = c.add_node_with_parents(&[r]).unwrap();
        assert!(c.reaches(r, child));
        c.verify().unwrap();
    }

    #[test]
    fn root_insertion_into_empty_closure() {
        let mut c = CompressedClosure::build(&DiGraph::new()).unwrap();
        let a = c.add_node_with_parents(&[]).unwrap();
        let b = c.add_node_with_parents(&[a]).unwrap();
        assert!(c.reaches(a, b));
        c.verify().unwrap();
    }

    #[test]
    fn multi_parent_node_addition() {
        let mut c = base();
        // New node under both 1 and 2 (the paper's "connected to more than
        // one existing node").
        let n = c.add_node_with_parents(&[NodeId(1), NodeId(2)]).unwrap();
        assert!(c.reaches(NodeId(1), n));
        assert!(c.reaches(NodeId(2), n));
        assert!(c.reaches(NodeId(0), n));
        assert!(!c.reaches(NodeId(3), n));
        c.verify().unwrap();
    }

    #[test]
    fn duplicate_parents_are_deduped() {
        let mut c = base();
        let n = c
            .add_node_with_parents(&[NodeId(1), NodeId(1), NodeId(1)])
            .unwrap();
        assert_eq!(c.graph().predecessors(n), &[NodeId(1)]);
        c.verify().unwrap();
        // Non-adjacent duplicates too: `[a, b, a]` must not leak `a` into
        // the non-tree-arc loop (Vec::dedup would).
        let m = c
            .add_node_with_parents(&[NodeId(1), NodeId(2), NodeId(1)])
            .unwrap();
        let mut preds = c.graph().predecessors(m).to_vec();
        preds.sort_unstable();
        assert_eq!(preds, vec![NodeId(1), NodeId(2)]);
        c.verify().unwrap();
    }

    #[test]
    fn gap_one_churn_escalates_instead_of_panicking() {
        // With gap(1) (the paper's contiguous §3 numbering) every owned
        // region has width 1 even after a fresh relabel; insertion must
        // escalate the gap rather than hit the old "fresh gap must admit a
        // midpoint" panic.
        let mut c = ClosureConfig::new().gap(1).build(&DiGraph::new()).unwrap();
        let root = c.add_node_with_parents(&[]).unwrap();
        let mut last = root;
        for _ in 0..12 {
            last = c.add_node_with_parents(&[last]).unwrap();
            assert!(c.reaches(root, last));
        }
        c.verify().unwrap();
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut c = base();
        assert_eq!(
            c.add_node_with_parents(&[NodeId(99)]),
            Err(UpdateError::UnknownNode(NodeId(99)))
        );
    }

    #[test]
    fn non_tree_arc_propagates_with_subsumption_cutoff() {
        // Paper Fig 4.2: adding (x,h) where h's interval is already subsumed
        // at b means no new interval lands at b or its ancestors.
        let mut c = base();
        // Add leaf x under 1 and a deep sink h under 3.
        let x = c.add_node_with_parents(&[NodeId(1)]).unwrap();
        let h = c.add_node_with_parents(&[NodeId(3)]).unwrap();
        let before_0 = c.intervals(NodeId(0)).count();
        c.add_edge(x, h).unwrap();
        assert!(c.reaches(x, h));
        assert!(c.reaches(NodeId(1), h), "x's parent reaches h through x");
        // 0 reached h already through its tree interval; subsumption means
        // its set is unchanged.
        assert_eq!(c.intervals(NodeId(0)).count(), before_0);
        c.verify().unwrap();
    }

    #[test]
    fn add_edge_rejects_cycles_and_self_loops() {
        let mut c = base();
        assert_eq!(
            c.add_edge(NodeId(3), NodeId(0)),
            Err(UpdateError::WouldCreateCycle {
                src: NodeId(3),
                dst: NodeId(0)
            })
        );
        assert_eq!(c.add_edge(NodeId(2), NodeId(2)), Err(UpdateError::SelfLoop(NodeId(2))));
        assert_eq!(c.add_edge(NodeId(0), NodeId(1)), Ok(false), "existing arc");
    }

    #[test]
    fn random_update_sequences_match_rebuilt_closure() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let g = generators::random_dag(generators::RandomDagConfig {
            nodes: 20,
            avg_out_degree: 1.5,
            seed: 1,
        });
        let mut c = ClosureConfig::new().gap(64).build(&g).unwrap();
        for step in 0..120 {
            if rng.random_bool(0.5) && c.node_count() >= 2 {
                let src = NodeId(rng.random_range(0..c.node_count() as u32));
                let dst = NodeId(rng.random_range(0..c.node_count() as u32));
                if src != dst && !c.reaches(dst, src) {
                    c.add_edge(src, dst).unwrap();
                }
            } else {
                let k = rng.random_range(0..=2.min(c.node_count()));
                let parents: Vec<NodeId> = (0..k)
                    .map(|_| NodeId(rng.random_range(0..c.node_count() as u32)))
                    .collect();
                c.add_node_with_parents(&parents).unwrap();
            }
            if step % 30 == 29 {
                c.verify().unwrap_or_else(|e| panic!("step {step}: {e}"));
            }
        }
        c.verify().unwrap();
    }
}
