//! Specialized closure-size computation for tiny DAGs (Fig 3.12).
//!
//! The paper's Fig 3.12 is a *census*: "we generated all possible directed
//! acyclic graphs of 8 nodes and computed the size of compressed closure in
//! number of intervals". Over the fixed topological order 0 < 1 < … < n-1
//! that is `2^(n(n-1)/2)` graphs — 268 million for n = 8 — so the general
//! heap-allocating pipeline is replaced here by a stack-only implementation
//! over `u8` bitmasks: Alg1, postorder labeling and reverse-topological
//! interval propagation in a few hundred nanoseconds per graph.
//!
//! Correctness is established by testing against the general
//! [`crate::CompressedClosure`] on every mask for small `n`.

const MAX_N: usize = 8;
/// Upper bound on intervals at one node for `n <= 8`: one tree interval
/// plus at most `n` inherited tree intervals.
const CAP: usize = MAX_N + 1;

/// Computes the total interval count of the compressed closure (optimal
/// Alg1 tree cover, no merging) of the `n`-node DAG encoded by `mask`.
///
/// Bit `k` of `mask` is the k-th pair `(i, j)`, `i < j`, in lexicographic
/// order — the same encoding as [`tc_graph::generators::dag_from_mask`].
///
/// # Panics
///
/// Panics if `n > 8`.
#[allow(clippy::needless_range_loop)] // index-coupled bitmask decode reads clearest this way
pub fn interval_count(n: usize, mask: u64) -> u32 {
    assert!(n <= MAX_N, "small_dag supports at most {MAX_N} nodes");

    // Decode adjacency into per-node successor/predecessor bitmasks.
    let mut succ = [0u8; MAX_N];
    let mut pred = [0u8; MAX_N];
    let mut bit = 0u32;
    for i in 0..n {
        for j in (i + 1)..n {
            if mask & (1u64 << bit) != 0 {
                succ[i] |= 1 << j;
                pred[j] |= 1 << i;
            }
            bit += 1;
        }
    }

    // Alg1: nodes are already in topological order.
    let mut pred_set = [0u8; MAX_N];
    let mut parent = [usize::MAX; MAX_N];
    for j in 0..n {
        let mut best = usize::MAX;
        let mut best_size = 0u32;
        let mut p = pred[j];
        while p != 0 {
            let i = p.trailing_zeros() as usize;
            p &= p - 1;
            let size = pred_set[i].count_ones();
            // Ties break to the smaller id; iterating ascending, strict `>`.
            if best == usize::MAX || size > best_size {
                best = i;
                best_size = size;
            }
            pred_set[j] |= pred_set[i] | (1 << i);
        }
        parent[j] = best;
    }

    // Children bitmask per node (ascending id order = cover order).
    let mut children = [0u8; MAX_N];
    for (j, &p) in parent.iter().enumerate().take(n) {
        if p != usize::MAX {
            children[p] |= 1 << j;
        }
    }

    // Postorder numbers 1..=n and subtree lows over the forest.
    let mut post = [0u8; MAX_N];
    let mut low = [0u8; MAX_N];
    let mut counter = 0u8;
    // Explicit stack: (node, remaining-children mask, low-so-far).
    let mut stack = [(0usize, 0u8, 0u8); MAX_N + 1];
    for root in 0..n {
        if parent[root] != usize::MAX {
            continue;
        }
        let mut top = 0usize;
        stack[0] = (root, children[root], u8::MAX);
        loop {
            let (node, kids, low_acc) = stack[top];
            if kids != 0 {
                let child = kids.trailing_zeros() as usize;
                stack[top].1 &= kids - 1;
                top += 1;
                stack[top] = (child, children[child], u8::MAX);
            } else {
                counter += 1;
                post[node] = counter;
                low[node] = if low_acc == u8::MAX { counter } else { low_acc };
                if top == 0 {
                    break;
                }
                top -= 1;
                let parent_low = &mut stack[top].2;
                *parent_low = (*parent_low).min(low[node]);
            }
        }
    }

    // Reverse-topological interval propagation with subsumption, on
    // stack-allocated interval lists.
    #[derive(Clone, Copy)]
    struct Set {
        items: [(u8, u8); CAP],
        len: usize,
    }
    impl Set {
        fn insert(&mut self, lo: u8, hi: u8) {
            let mut w = 0;
            for r in 0..self.len {
                let (elo, ehi) = self.items[r];
                if elo <= lo && hi <= ehi {
                    return; // subsumed by existing
                }
                if lo <= elo && ehi <= hi {
                    continue; // existing subsumed: drop it
                }
                self.items[w] = self.items[r];
                w += 1;
            }
            self.items[w] = (lo, hi);
            self.len = w + 1;
        }
    }

    let mut sets = [Set {
        items: [(0, 0); CAP],
        len: 0,
    }; MAX_N];
    for v in 0..n {
        sets[v].insert(low[v], post[v]);
    }
    // Node order 0..n is topological, so n-1..0 is reverse topological.
    for v in (0..n).rev() {
        let mut s = succ[v];
        while s != 0 {
            let q = s.trailing_zeros() as usize;
            s &= s - 1;
            let qset = sets[q];
            for r in 0..qset.len {
                let (lo, hi) = qset.items[r];
                sets[v].insert(lo, hi);
            }
        }
    }

    (0..n).map(|v| sets[v].len as u32).sum()
}

/// A histogram of total interval counts over a stream of DAG masks — the
/// data behind Fig 3.12.
#[derive(Debug, Clone, Default)]
pub struct Census {
    /// `buckets[k]` = number of graphs whose compressed closure used `k`
    /// intervals in total.
    pub buckets: Vec<u64>,
    /// Graphs examined.
    pub total: u64,
}

impl Census {
    /// Tallies one graph.
    pub fn record(&mut self, intervals: u32) {
        let ix = intervals as usize;
        if self.buckets.len() <= ix {
            self.buckets.resize(ix + 1, 0);
        }
        self.buckets[ix] += 1;
        self.total += 1;
    }

    /// Merges another census into this one (for parallel sweeps).
    pub fn merge(&mut self, other: &Census) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (ix, &count) in other.buckets.iter().enumerate() {
            self.buckets[ix] += count;
        }
        self.total += other.total;
    }

    /// Mean interval count.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        let sum: u64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(ix, &c)| ix as u64 * c)
            .sum();
        sum as f64 / self.total as f64
    }

    /// Largest interval count observed (the worst case of Fig 3.6).
    pub fn max(&self) -> usize {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .unwrap_or(0)
    }
}

/// Runs the census over an iterator of masks.
pub fn census(n: usize, masks: impl Iterator<Item = u64>) -> Census {
    let mut c = Census::default();
    for mask in masks {
        c.record(interval_count(n, mask));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompressedClosure;
    use tc_graph::generators;

    #[test]
    fn matches_general_pipeline_on_all_5_node_dags() {
        for mask in generators::enumerate_dag_masks(5) {
            let g = generators::dag_from_mask(5, mask);
            let general = CompressedClosure::build(&g).unwrap().total_intervals() as u32;
            let fast = interval_count(5, mask);
            assert_eq!(fast, general, "mask {mask:#b}");
        }
    }

    #[test]
    fn matches_general_pipeline_on_sampled_8_node_dags() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let universe = generators::dag_mask_count(8);
        for _ in 0..500 {
            let mask = rng.random_range(0..universe);
            let g = generators::dag_from_mask(8, mask);
            let general = CompressedClosure::build(&g).unwrap().total_intervals() as u32;
            assert_eq!(interval_count(8, mask), general, "mask {mask}");
        }
    }

    #[test]
    fn empty_graph_counts_one_interval_per_node() {
        assert_eq!(interval_count(8, 0), 8);
        assert_eq!(interval_count(3, 0), 3);
    }

    #[test]
    fn full_upper_triangular_is_a_chain_closure() {
        // All arcs present: the optimal cover is the chain 0->1->...->n-1 and
        // every shortcut is subsumed -> n intervals.
        let n = 6;
        let all = generators::dag_mask_count(n) - 1;
        assert_eq!(interval_count(n, all), n as u32);
    }

    #[test]
    fn census_statistics() {
        let c = census(4, generators::enumerate_dag_masks(4));
        assert_eq!(c.total, 64);
        assert_eq!(c.buckets.iter().sum::<u64>(), 64);
        // The empty graph gives exactly 4 intervals; nothing can give fewer.
        assert_eq!(c.buckets[..4].iter().sum::<u64>(), 0);
        assert!(c.buckets[4] >= 1);
        assert!(c.mean() >= 4.0);
        assert!(c.max() <= 4 + 4); // generous bound for n=4
    }

    #[test]
    fn census_merge() {
        let mut a = census(3, 0..4);
        let b = census(3, 4..8);
        let whole = census(3, 0..8);
        a.merge(&b);
        assert_eq!(a.total, whole.total);
        assert_eq!(a.buckets, whole.buckets);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_nodes_panics() {
        let _ = interval_count(9, 0);
    }
}
