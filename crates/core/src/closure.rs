//! The compressed transitive closure and its query API.

use std::sync::Arc;

use tc_graph::{dot, topo, DiGraph, NodeId};
use tc_interval::IntervalSet;

use crate::builder::ClosureConfig;
use crate::labeling::Labeling;
use crate::paged::PagedPlane;
use crate::parallel;
use crate::plane::QueryPlane;
use crate::propagate::propagate_dispatch;
use crate::stats::ClosureStats;
use crate::treecover::TreeCover;

/// A materialized, interval-compressed transitive closure of an acyclic
/// binary relation.
///
/// Built with [`CompressedClosure::build`] (default configuration) or
/// through [`ClosureConfig`]. Supports O(log k) reachability queries (k =
/// intervals at the source node), successor/predecessor enumeration, and
/// the paper's §4 incremental updates.
///
/// The closure owns a copy of the base relation: updates must keep the two
/// consistent, and predecessor lists are needed for update propagation
/// ("if the list of immediate predecessors is also maintained with each
/// node, this propagation can be performed quite efficiently").
#[derive(Debug, Clone)]
pub struct CompressedClosure {
    pub(crate) graph: DiGraph,
    pub(crate) cover: TreeCover,
    pub(crate) lab: Labeling,
    pub(crate) config: ClosureConfig,
    /// Read-optimized snapshot of the labels ([`QueryPlane`]); present only
    /// between a [`CompressedClosure::freeze`] and the next update. Never
    /// serialized.
    pub(crate) plane: Option<QueryPlane>,
    /// Out-of-core snapshot ([`PagedPlane`]): the same frozen state, paged
    /// through a buffer pool from a `PLN1` temp file instead of held in
    /// memory. Built by [`CompressedClosure::freeze`] when
    /// [`ClosureConfig::paged`] is set, or attached by
    /// [`crate::PagedClosure::thaw`]. Mutually exclusive with `plane`;
    /// invalidated by updates exactly like it. Never serialized.
    pub(crate) paged: Option<Arc<PagedPlane>>,
}

impl CompressedClosure {
    /// Builds the closure of `g` with the default [`ClosureConfig`]
    /// (optimal tree cover, gapped numbering, no merging).
    pub fn build(g: &DiGraph) -> Result<Self, topo::CycleError> {
        ClosureConfig::default().build(g)
    }

    pub(crate) fn from_parts(
        graph: DiGraph,
        cover: TreeCover,
        lab: Labeling,
        config: ClosureConfig,
    ) -> Self {
        CompressedClosure {
            graph,
            cover,
            lab,
            config,
            plane: None,
            paged: None,
        }
    }

    /// Freezes the current labels into a read-optimized snapshot:
    /// `reaches`, `reaches_batch`, `successors`, `successor_count`, and
    /// `predecessors` answer from contiguous index arrays until the next
    /// update invalidates it. By default the snapshot is an in-memory
    /// [`QueryPlane`]; with [`ClosureConfig::paged`] set it is instead
    /// streamed to a temp file and served out-of-core through a buffer
    /// pool ([`PagedPlane`]). Freezing is O(n + total intervals) and
    /// idempotent; answers are bit-identical in all three modes.
    ///
    /// # Panics
    ///
    /// A paged freeze panics if the temp file cannot be written.
    pub fn freeze(&mut self) {
        if self.config.paged_pool > 0 {
            let plane = crate::paged::freeze_paged(
                &self.graph,
                &self.lab,
                self.config.hybrid_threshold,
                self.config.paged_pool,
            )
            .expect("paged freeze: temp plane file");
            self.paged = Some(Arc::new(plane));
            self.plane = None;
        } else {
            self.plane = Some(QueryPlane::freeze(
                &self.graph,
                &self.lab,
                self.config.hybrid_threshold,
            ));
            self.paged = None;
        }
    }

    /// Drops the frozen snapshot (if any), returning queries to the
    /// mutable labels.
    pub fn thaw(&mut self) {
        self.plane = None;
        self.paged = None;
    }

    /// Whether a frozen snapshot (in-memory or paged) is serving queries.
    pub fn is_frozen(&self) -> bool {
        self.plane.is_some() || self.paged.is_some()
    }

    /// The frozen in-memory [`QueryPlane`], when one is active.
    pub fn plane(&self) -> Option<&QueryPlane> {
        self.plane.as_ref()
    }

    /// The frozen out-of-core [`PagedPlane`], when one is active.
    pub fn paged_plane(&self) -> Option<&Arc<PagedPlane>> {
        self.paged.as_ref()
    }

    /// Invalidates the frozen plane; every update path calls this at its
    /// first point of mutation, so a stale snapshot can never serve a
    /// query.
    pub(crate) fn invalidate_plane(&mut self) {
        self.plane = None;
        self.paged = None;
    }

    /// The base relation this closure materializes.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The tree cover in use.
    pub fn cover(&self) -> &TreeCover {
        &self.cover
    }

    /// The configuration the closure was built with.
    pub fn config(&self) -> &ClosureConfig {
        &self.config
    }

    /// Changes the worker-thread count used by subsequent parallel
    /// operations (batch queries, predecessor scans, stats, relabeling,
    /// rebuilds) — see [`ClosureConfig::threads`].
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads;
    }

    /// The current worker-thread count (see [`ClosureConfig::threads`]);
    /// restored from the stream's config footer when deserializing.
    pub fn threads(&self) -> usize {
        self.config.threads
    }

    /// Switches deletion recomputes between the scoped affected-region
    /// sweep and the historical global sweep (see
    /// [`ClosureConfig::scoped_deletes`]). Takes effect on the next
    /// `remove_edge`/`remove_node`.
    pub fn set_scoped_deletes(&mut self, enable: bool) {
        self.config.scoped_deletes = enable;
    }

    /// Whether deletions recompute only the affected region (see
    /// [`ClosureConfig::scoped_deletes`]).
    pub fn scoped_deletes(&self) -> bool {
        self.config.scoped_deletes
    }

    /// Switches subsequent freezes between the resident query plane and the
    /// out-of-core paged plane (see [`ClosureConfig::paged`]); `0` goes back
    /// to resident. Takes effect on the next [`CompressedClosure::freeze`] —
    /// an already-frozen plane is left as it is. Never serialized: whether a
    /// snapshot is served out-of-core is a property of the opening process,
    /// not the stream.
    pub fn set_paged_pool(&mut self, pool_pages: usize) {
        self.config.paged_pool = pool_pages;
    }

    /// The buffer-pool page budget paged freezes will use (`0` = resident
    /// freezes; see [`ClosureConfig::paged`]).
    pub fn paged_pool(&self) -> usize {
        self.config.paged_pool
    }

    /// Changes the hybrid bitset threshold used by subsequent freezes (see
    /// [`ClosureConfig::hybrid`]): nodes whose merged rank-interval count
    /// exceeds `threshold` get a bitset row instead of an interval row.
    /// `usize::MAX` (the default) keeps freezes pure-interval. Takes effect
    /// on the next [`CompressedClosure::freeze`].
    pub fn set_hybrid_threshold(&mut self, threshold: usize) {
        self.config.hybrid_threshold = threshold;
    }

    /// The hybrid bitset threshold subsequent freezes will use (see
    /// [`ClosureConfig::hybrid`]).
    pub fn hybrid_threshold(&self) -> usize {
        self.config.hybrid_threshold
    }

    /// Per-node *merged rank-interval* counts — the fragment counts a
    /// freeze would store per row, i.e. exactly the quantity the hybrid
    /// threshold is compared against. Computed without freezing, so `stats`
    /// tooling can report the histogram on a mutable closure.
    pub fn merged_interval_counts(&self) -> Vec<usize> {
        let line_nums: Vec<u64> = self
            .lab
            .line
            .live_in_range(0, u64::MAX)
            .map(|(num, _)| num)
            .collect();
        let mut row = Vec::new();
        self.lab
            .sets
            .iter()
            .map(|set| {
                crate::plane::merged_row_into(&line_nums, set, &mut row);
                row.len()
            })
            .collect()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Whether `src` reaches `dst` (reflexive, per the paper: "we assume
    /// that every node can reach itself").
    ///
    /// One binary search over `src`'s interval set — "a lookup instead of a
    /// graph traversal". When a [`QueryPlane`] is frozen the probe runs
    /// branchless over its CSR arrays instead of the per-node sets.
    #[inline]
    pub fn reaches(&self, src: NodeId, dst: NodeId) -> bool {
        match &self.plane {
            Some(plane) => plane.reaches(src, dst),
            None => match &self.paged {
                Some(paged) => paged.reaches(src, dst),
                None => self.label_contains(src, self.lab.post[dst.index()]),
            },
        }
    }

    /// Whether `u`'s mutable label covers number `t`, with a fast path for
    /// the dominant single-interval (tree-only) labels: one inline range
    /// comparison rules the node out — or in — without the binary-search
    /// machinery, and multi-interval sets are skipped when `t` falls below
    /// their span.
    #[inline]
    fn label_contains(&self, u: NodeId, t: u64) -> bool {
        let set = &self.lab.sets[u.index()];
        match set.as_slice() {
            [] => false,
            [only] => only.contains(t),
            items => {
                items[0].lo() <= t && t <= items[items.len() - 1].hi() && set.contains_point(t)
            }
        }
    }

    /// All nodes reachable from `node` (including itself), decoded from the
    /// interval set in ascending postorder-number order.
    pub fn successors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.successors_into(node, &mut out);
        out
    }

    /// [`CompressedClosure::successors`] into a caller buffer: clears
    /// `out`, keeps its capacity. Decode loops hoist the buffer so only
    /// the largest row ever pays allocation (the hoisting `reaches_batch`
    /// already does) — works frozen, paged, or mutable.
    pub fn successors_into(&self, node: NodeId, out: &mut Vec<NodeId>) {
        match &self.plane {
            Some(plane) => plane.successors_into(node, out),
            None => match &self.paged {
                Some(paged) => paged.successors_into(node, out),
                None => self.lab.decode_into(&self.lab.sets[node.index()], out),
            },
        }
    }

    /// Number of nodes reachable from `node` (including itself), without
    /// materializing the list.
    pub fn successor_count(&self, node: NodeId) -> usize {
        match &self.plane {
            Some(plane) => plane.successor_count(node),
            None => match &self.paged {
                Some(paged) => paged.successor_count(node),
                None => self.lab.decode_count(&self.lab.sets[node.index()]),
            },
        }
    }

    /// Answers a batch of reachability queries in one call, fanning the
    /// pairs across the configured worker threads ([`ClosureConfig::threads`]).
    /// Result `i` is `reaches(pairs[i].0, pairs[i].1)`.
    ///
    /// Each query is an independent read of immutable label state, so the
    /// batch parallelizes embarrassingly; the output is allocated once up
    /// front and every worker writes its chunk in place. With `threads <= 1`
    /// (or a small batch) the pairs are answered inline with no thread
    /// overhead.
    pub fn reaches_batch(&self, pairs: &[(NodeId, NodeId)]) -> Vec<bool> {
        let threads = parallel::effective_threads(self.config.threads);
        let mut out = vec![false; pairs.len()];
        match &self.plane {
            Some(plane) => parallel::map_chunks_into(pairs, &mut out, threads, |chunk, slots| {
                for (slot, &(src, dst)) in slots.iter_mut().zip(chunk) {
                    *slot = plane.reaches(src, dst);
                }
            }),
            // Paged probes serialize on the pool lock anyway, so the batch
            // runs inline; the win is the pool keeping hot pages resident
            // across the whole batch.
            None if self.paged.is_some() => {
                let paged = self.paged.as_ref().expect("checked above");
                for (slot, &(src, dst)) in out.iter_mut().zip(pairs) {
                    *slot = paged.reaches(src, dst);
                }
            }
            None => {
                // Hoist the post-number array out of the per-pair loop; each
                // probe then goes through the same single-interval fast path
                // as the scalar `reaches`.
                let post = self.lab.post.as_slice();
                parallel::map_chunks_into(pairs, &mut out, threads, |chunk, slots| {
                    for (slot, &(src, dst)) in slots.iter_mut().zip(chunk) {
                        *slot = self.label_contains(src, post[dst.index()]);
                    }
                });
            }
        }
        out
    }

    /// All nodes that reach `node` (including itself), ascending by node
    /// id.
    ///
    /// Frozen, this is one O(k log m) stabbing query over the
    /// [`QueryPlane`]'s inverted index. Mutable, it scans every interval
    /// set — O(n log k), softened by a single-interval fast path and split
    /// across the configured worker threads; build a closure of the
    /// reversed relation ([`crate::bidir::BiClosure`]) if mutable
    /// predecessor queries dominate.
    pub fn predecessors(&self, node: NodeId) -> Vec<NodeId> {
        if let Some(plane) = &self.plane {
            return plane.predecessors(node);
        }
        if let Some(paged) = &self.paged {
            return paged.predecessors(node);
        }
        let target = self.lab.post[node.index()];
        let threads = parallel::effective_threads(self.config.threads);
        if threads <= 1 {
            return self
                .graph
                .nodes()
                .filter(|&u| self.label_contains(u, target))
                .collect();
        }
        let nodes: Vec<NodeId> = self.graph.nodes().collect();
        let mut hits = vec![false; nodes.len()];
        parallel::map_chunks_into(&nodes, &mut hits, threads, |chunk, slots| {
            for (slot, &u) in slots.iter_mut().zip(chunk) {
                *slot = self.label_contains(u, target);
            }
        });
        nodes
            .into_iter()
            .zip(hits)
            .filter_map(|(u, hit)| hit.then_some(u))
            .collect()
    }

    /// Reconstructs one concrete path `src -> ... -> dst` (inclusive), or
    /// `None` if `dst` is unreachable.
    ///
    /// The closure turns path search into greedy descent: from each node,
    /// any immediate successor that still reaches `dst` (one lookup each)
    /// is on a valid path, so the cost is O(path length × out-degree × log
    /// k) with no backtracking — a provenance query the raw closure cannot
    /// answer.
    pub fn find_path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        if !self.reaches(src, dst) {
            return None;
        }
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            let next = self
                .graph
                .successors(cur)
                .iter()
                .copied()
                .find(|&s| self.reaches(s, dst))
                .expect("reaches(cur, dst) implies a successor on a path");
            path.push(next);
            cur = next;
        }
        Some(path)
    }

    /// The postorder number assigned to `node`.
    pub fn post_number(&self, node: NodeId) -> u64 {
        self.lab.post[node.index()]
    }

    /// The interval set labeling `node` (its tree interval plus surviving
    /// non-tree intervals).
    pub fn intervals(&self, node: NodeId) -> &IntervalSet {
        &self.lab.sets[node.index()]
    }

    /// The node's tree interval `[low, post]`.
    pub fn tree_interval(&self, node: NodeId) -> tc_interval::Interval {
        self.lab.tree_interval(node)
    }

    /// Total number of intervals across all nodes — the quantity Alg1
    /// minimizes (Theorem 1).
    pub fn total_intervals(&self) -> usize {
        self.lab.sets.iter().map(IntervalSet::count).sum()
    }

    /// Storage statistics in the paper's §3.3 units. Computes the full
    /// closure size by decoding every node's interval set (O(closure size)),
    /// with the per-node decodes split across the configured worker threads.
    pub fn stats(&self) -> ClosureStats {
        let n = self.node_count();
        let threads = parallel::effective_threads(self.config.threads);
        let nodes: Vec<NodeId> = self.graph.nodes().collect();
        let per_node = parallel::map_chunks(&nodes, threads, |chunk| {
            chunk
                .iter()
                .map(|&v| {
                    let set = &self.lab.sets[v.index()];
                    // Drop the reflexive pair; saturate so a (pathological)
                    // empty label set cannot underflow the sum.
                    (set.count(), self.lab.decode_count(set).saturating_sub(1))
                })
                .collect()
        });
        let (total, closure_size) = per_node
            .into_iter()
            .fold((0usize, 0usize), |(ti, cs), (t, c)| (ti + t, cs + c));
        ClosureStats {
            nodes: n,
            graph_arcs: self.graph.edge_count(),
            tree_intervals: n,
            non_tree_intervals: total - n,
            closure_size,
        }
    }

    /// Exhaustively checks the closure against per-node DFS ground truth.
    /// O(n·m) — for tests and debugging only. For a check cheap enough to
    /// run after every update, see [`CompressedClosure::audit`].
    pub fn verify(&self) -> Result<(), String> {
        for u in self.graph.nodes() {
            let truth = tc_graph::traverse::reachable_set(&self.graph, u);
            for v in self.graph.nodes() {
                let expect = truth.contains(v.index());
                let got = self.reaches(u, v);
                if got != expect {
                    return Err(format!(
                        "reach({u:?},{v:?}): closure says {got}, graph says {expect}"
                    ));
                }
            }
            // Decoded successor list must equal the truth set exactly.
            let mut decoded = self.successors(u);
            decoded.sort_unstable();
            let mut expect: Vec<NodeId> = truth.iter().map(NodeId::from_index).collect();
            expect.sort_unstable();
            if decoded != expect {
                return Err(format!(
                    "successors({u:?}): decoded {decoded:?}, expected {expect:?}"
                ));
            }
        }
        Ok(())
    }

    /// Renders the relation in DOT format with interval labels on nodes,
    /// tree arcs solid and non-tree arcs dashed — the style of the paper's
    /// Figures 3.2 and 4.1.
    pub fn to_dot(&self) -> String {
        dot::to_dot_with(
            &self.graph,
            |n| format!("{n}: {}", self.lab.sets[n.index()]),
            |s, d| {
                if self.cover.is_tree_arc(s, d) {
                    dot::EdgeStyle::Solid
                } else {
                    dot::EdgeStyle::Dashed
                }
            },
        )
    }

    /// Caps the number line at `capacity` occupied positions (live plus
    /// tombstoned). Insertions past the cap fail with
    /// [`crate::UpdateError::NumberLineFull`] — checked before anything
    /// mutates — instead of growing without bound; [`Self::relabel`]
    /// reclaims tombstones under the same ceiling. Serving deployments use
    /// this as an admission control on untrusted writers.
    pub fn set_number_line_capacity(&mut self, capacity: usize) {
        self.lab.line.set_capacity(capacity);
    }

    /// Re-labels the closure: keeps the current tree cover but reassigns
    /// postorder numbers with fresh gaps (and fresh refinement reserves),
    /// dropping tombstones, then re-propagates all intervals. Called
    /// automatically when an insertion finds no free number (§4.1 "What if
    /// empty numbers run out"); also useful to reclaim space after many
    /// deletions.
    pub fn relabel(&mut self) {
        // Also called mid-insertion on gap exhaustion, so it must only
        // invalidate — never freeze — or the caller would keep mutating
        // under a live snapshot.
        self.invalidate_plane();
        let cap = self.lab.line.capacity();
        self.lab = Labeling::assign(&self.cover, self.config.gap, self.config.reserve);
        // Carry the configured admission ceiling across the fresh line. The
        // relabeled line holds only live nodes — at most the old occupancy —
        // so the old capacity is always admissible here.
        self.lab.line.set_capacity(cap);
        propagate_dispatch(&self.graph, &mut self.lab, self.config.threads);
        self.apply_merge_policy();
    }

    /// Rebuilds from scratch with a freshly optimized tree cover — the
    /// paper's remedy when incremental updates have eroded optimality ("it
    /// may be prudent to develop a new tree-cover after sufficient update
    /// activity").
    pub fn rebuild(&mut self) {
        *self = self
            .config
            .build(&self.graph)
            .expect("closure graph must stay acyclic");
    }

    pub(crate) fn apply_merge_policy(&mut self) {
        if self.config.merge_adjacent {
            for set in &mut self.lab.sets {
                set.merge_adjacent();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoverStrategy;
    use tc_graph::generators;

    fn paper_dag() -> DiGraph {
        // Diamond with tail and a side sink, exercising tree + non-tree arcs.
        DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3), (2, 4), (3, 5)])
    }

    #[test]
    fn build_and_query_small_dag() {
        let c = CompressedClosure::build(&paper_dag()).unwrap();
        assert!(c.reaches(NodeId(0), NodeId(5)));
        assert!(c.reaches(NodeId(2), NodeId(5)));
        assert!(c.reaches(NodeId(4), NodeId(4)), "reflexive");
        assert!(!c.reaches(NodeId(1), NodeId(4)));
        assert!(!c.reaches(NodeId(5), NodeId(0)));
        c.verify().unwrap();
    }

    #[test]
    fn successors_and_predecessors() {
        let c = CompressedClosure::build(&paper_dag()).unwrap();
        let mut succ = c.successors(NodeId(2));
        succ.sort_unstable();
        assert_eq!(succ, vec![NodeId(2), NodeId(3), NodeId(4), NodeId(5)]);
        assert_eq!(c.successor_count(NodeId(2)), 4);
        let mut pred = c.predecessors(NodeId(3));
        pred.sort_unstable();
        assert_eq!(pred, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn find_path_returns_real_paths() {
        let c = CompressedClosure::build(&paper_dag()).unwrap();
        let path = c.find_path(NodeId(0), NodeId(5)).unwrap();
        assert_eq!(path.first(), Some(&NodeId(0)));
        assert_eq!(path.last(), Some(&NodeId(5)));
        for w in path.windows(2) {
            assert!(c.graph().has_edge(w[0], w[1]), "{:?} not an arc", w);
        }
        assert_eq!(c.find_path(NodeId(4), NodeId(4)), Some(vec![NodeId(4)]));
        assert_eq!(c.find_path(NodeId(5), NodeId(0)), None);
    }

    #[test]
    fn find_path_on_random_graphs() {
        let g = generators::random_dag(generators::RandomDagConfig {
            nodes: 80,
            avg_out_degree: 2.0,
            seed: 14,
        });
        let c = CompressedClosure::build(&g).unwrap();
        for u in g.nodes().step_by(7) {
            for v in g.nodes().step_by(11) {
                match c.find_path(u, v) {
                    Some(path) => {
                        assert_eq!((path[0], *path.last().unwrap()), (u, v));
                        assert!(path.windows(2).all(|w| g.has_edge(w[0], w[1])));
                    }
                    None => assert!(!c.reaches(u, v)),
                }
            }
        }
    }

    #[test]
    fn stats_count_paper_units() {
        let c = CompressedClosure::build(&paper_dag()).unwrap();
        let s = c.stats();
        assert_eq!(s.nodes, 6);
        assert_eq!(s.graph_arcs, 6);
        assert_eq!(s.tree_intervals, 6);
        // Full closure: 0->{1,2,3,4,5}, 1->{3,5}, 2->{3,4,5}, 3->{5} = 11.
        assert_eq!(s.closure_size, 11);
        assert_eq!(s.compressed_units(), 2 * c.total_intervals());
    }

    #[test]
    fn all_strategies_produce_correct_closures() {
        let g = generators::random_dag(generators::RandomDagConfig {
            nodes: 60,
            avg_out_degree: 2.5,
            seed: 11,
        });
        for strat in [
            CoverStrategy::Optimal,
            CoverStrategy::FirstParent,
            CoverStrategy::Random { seed: 5 },
            CoverStrategy::Deepest,
        ] {
            let c = ClosureConfig::new().strategy(strat).build(&g).unwrap();
            c.verify().unwrap_or_else(|e| panic!("{strat:?}: {e}"));
        }
    }

    #[test]
    fn optimal_cover_never_worse_than_alternatives() {
        for seed in 0..5 {
            let g = generators::random_dag(generators::RandomDagConfig {
                nodes: 40,
                avg_out_degree: 2.0,
                seed,
            });
            let optimal = CompressedClosure::build(&g).unwrap().total_intervals();
            for strat in [
                CoverStrategy::FirstParent,
                CoverStrategy::Random { seed: 99 },
                CoverStrategy::Deepest,
            ] {
                let other = ClosureConfig::new()
                    .strategy(strat)
                    .build(&g)
                    .unwrap()
                    .total_intervals();
                assert!(
                    optimal <= other,
                    "seed {seed}: Alg1 {optimal} > {strat:?} {other}"
                );
            }
        }
    }

    #[test]
    fn merging_preserves_correctness_and_never_grows() {
        let g = generators::random_dag(generators::RandomDagConfig {
            nodes: 80,
            avg_out_degree: 3.0,
            seed: 21,
        });
        let plain = ClosureConfig::new().gap(1).build(&g).unwrap();
        let merged = ClosureConfig::new().gap(1).merge_adjacent(true).build(&g).unwrap();
        merged.verify().unwrap();
        assert!(merged.total_intervals() <= plain.total_intervals());
    }

    #[test]
    fn tree_closure_is_linear_and_single_interval() {
        // §3.1: a tree needs exactly one interval per node.
        let g = generators::balanced_tree(3, 3);
        let c = ClosureConfig::new().gap(1).build(&g).unwrap();
        assert_eq!(c.total_intervals(), g.node_count());
        c.verify().unwrap();
        let s = c.stats();
        assert_eq!(s.non_tree_intervals, 0);
        assert_eq!(s.compressed_units(), 2 * g.node_count());
    }

    #[test]
    fn bipartite_worst_case_matches_formula() {
        // Fig 3.6: K(m, n-m-1)... with m sources and k sinks the compressed
        // closure needs m·k intervals beyond what the tree cover absorbs.
        // For K(4,4): tree cover hangs all 4 sinks under one source; the
        // other 3 sources hold 4 non-tree intervals each (none subsumable:
        // sinks are tree-siblings). Total = 8 tree + 12 non-tree.
        let g = generators::bipartite_worst(4, 4);
        let c = ClosureConfig::new().gap(1).build(&g).unwrap();
        assert_eq!(c.total_intervals(), 8 + 12);
        c.verify().unwrap();
    }

    #[test]
    fn bipartite_hub_is_linear() {
        // Fig 3.7: the hub rewrite collapses the quadratic blow-up.
        let g = generators::bipartite_with_hub(4, 4);
        let c = ClosureConfig::new().gap(1).build(&g).unwrap();
        // One source adopts the hub as tree child; the other 3 inherit just
        // the hub's interval: n + (top - 1) = 12 total, linear in n (versus
        // 20 for the flat bipartite form of Fig 3.6).
        assert_eq!(c.total_intervals(), g.node_count() + 3);
        c.verify().unwrap();
    }

    #[test]
    fn relabel_preserves_semantics() {
        let g = paper_dag();
        let mut c = CompressedClosure::build(&g).unwrap();
        let before = c.total_intervals();
        c.relabel();
        assert_eq!(c.total_intervals(), before);
        c.verify().unwrap();
    }

    #[test]
    fn rebuild_preserves_semantics() {
        let g = paper_dag();
        let mut c = ClosureConfig::new()
            .strategy(CoverStrategy::FirstParent)
            .build(&g)
            .unwrap();
        c.rebuild();
        c.verify().unwrap();
    }

    #[test]
    fn dot_output_marks_non_tree_arcs() {
        let c = CompressedClosure::build(&paper_dag()).unwrap();
        let dot = c.to_dot();
        assert!(dot.contains("style=dashed"), "non-tree arc must be dashed");
        assert!(dot.contains('['), "labels must show intervals");
    }

    #[test]
    fn random_dags_verify_across_seeds_and_degrees() {
        for seed in 0..4 {
            for degree in [1.0, 2.0, 4.0] {
                let g = generators::random_dag(generators::RandomDagConfig {
                    nodes: 50,
                    avg_out_degree: degree,
                    seed,
                });
                let c = CompressedClosure::build(&g).unwrap();
                c.verify()
                    .unwrap_or_else(|e| panic!("seed {seed} degree {degree}: {e}"));
            }
        }
    }

    #[test]
    fn cyclic_input_is_rejected() {
        let g = DiGraph::from_edges([(0, 1), (1, 0)]);
        assert!(CompressedClosure::build(&g).is_err());
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let c = CompressedClosure::build(&DiGraph::new()).unwrap();
        assert_eq!(c.total_intervals(), 0);
        let mut g = DiGraph::new();
        let a = g.add_node();
        let c = CompressedClosure::build(&g).unwrap();
        assert!(c.reaches(a, a));
        assert_eq!(c.successors(a), vec![a]);
        assert_eq!(c.stats().closure_size, 0);
    }

    #[test]
    fn wide_and_narrow_plane_layouts_agree() {
        // Small graphs freeze into the narrow (u16-rank) layout; force the
        // wide layout on the same labeling and demand identical answers.
        let nodes = 300;
        let g = generators::random_dag(generators::RandomDagConfig {
            nodes,
            avg_out_degree: 2.5,
            seed: 7,
        });
        let mut c = CompressedClosure::build(&g).unwrap();
        c.freeze();
        let narrow = c.plane().expect("frozen").clone();
        let wide = crate::plane::QueryPlane::freeze_wide(&c.graph, &c.lab, usize::MAX);
        wide.check_consistency(&c.lab).unwrap();
        assert_eq!(wide.total_intervals(), narrow.total_intervals());
        for v in (0..nodes).map(NodeId::from_index) {
            assert_eq!(wide.successors(v), narrow.successors(v), "successors({v:?})");
            assert_eq!(wide.predecessors(v), narrow.predecessors(v), "predecessors({v:?})");
            assert_eq!(wide.successor_count(v), narrow.successor_count(v));
            for w in [0, 1, 57, 123, nodes - 1].map(NodeId::from_index) {
                assert_eq!(wide.reaches(v, w), narrow.reaches(v, w), "reaches({v:?}, {w:?})");
            }
        }
    }
}
