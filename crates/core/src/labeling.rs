//! Postorder numbering and per-node interval labels.
//!
//! This module owns the numeric side of the scheme: assigning gapped
//! postorder numbers over a tree cover (§3.1 and §4.1), tracking each node's
//! tree interval `[low, post]`, the *advertised* interval that inheritors
//! copy (which includes the optional refinement reserve, §4.1), and decoding
//! interval sets back into node lists.

use tc_graph::NodeId;
use tc_interval::{Interval, IntervalSet, NumberLine};

use crate::treecover::TreeCover;

/// The numeric labels of a closure: postorder numbers, interval lows, the
/// number line *L*, and the per-node interval sets.
#[derive(Debug, Clone)]
pub(crate) struct Labeling {
    /// Postorder number per node.
    pub post: Vec<u64>,
    /// Tree-interval low per node: one above the highest number (including
    /// reserve tail) preceding the node's subtree.
    pub low: Vec<u64>,
    /// Top of the node's *advertised* interval: `post + remaining reserve`.
    /// Inheritors copy `[low, advertised_hi]`; the node itself answers
    /// queries with `[low, post]` (it does not reach nodes refined into its
    /// own reserve tail). With `reserve == 0` this equals `post`.
    pub advertised_hi: Vec<u64>,
    /// Full interval set per node: the node's own (true) tree interval plus
    /// all inherited non-tree intervals.
    pub sets: Vec<IntervalSet>,
    /// The sorted list *L* of postorder numbers in use.
    pub line: NumberLine,
    /// Refinement reserve per node at (re)label time (the gap itself lives
    /// in [`crate::ClosureConfig`]; labels never need it after assignment).
    pub reserve: u64,
}

impl Labeling {
    /// Assigns fresh postorder numbers over `cover`, spacing consecutive
    /// numbers by `gap` and leaving a `reserve`-wide refinement tail above
    /// each number. Interval sets are initialized to the tree intervals
    /// only; run propagation afterwards to add non-tree intervals.
    ///
    /// Roots are visited in ascending id order; children in cover order.
    ///
    /// # Panics
    ///
    /// Panics unless `gap > 2 * reserve`: each gap must fit a reserve tail
    /// and still leave at least some room between consecutive tails.
    /// (`gap == 1` with no reserve is the paper's §3 contiguous numbering;
    /// insertions then relabel on every exhaustion.)
    pub fn assign(cover: &TreeCover, gap: u64, reserve: u64) -> Labeling {
        assert!(
            gap >= 1 && gap > 2 * reserve,
            "gap {gap} too small for reserve {reserve}"
        );
        let n = cover.node_count();
        let mut post = vec![0u64; n];
        let mut low = vec![0u64; n];
        let mut line = NumberLine::new();

        let mut counter = 0u64;
        let mut last_assigned = 0u64; // highest number handed out so far

        // Iterative postorder: frames carry the entry-time `last_assigned`
        // so a node's low is one past its predecessor subtree's tail.
        for root in cover.roots() {
            let mut stack: Vec<(NodeId, usize, u64)> = vec![(root, 0, last_assigned)];
            while let Some(&mut (node, ref mut next, entry_last)) = stack.last_mut() {
                let kids = cover.children(node);
                if *next < kids.len() {
                    let child = kids[*next];
                    *next += 1;
                    stack.push((child, 0, last_assigned));
                } else {
                    counter += 1;
                    let num = counter * gap;
                    post[node.index()] = num;
                    low[node.index()] = entry_last + reserve + 1;
                    line.assign(num, node.0);
                    last_assigned = num;
                    stack.pop();
                }
            }
        }

        let advertised_hi: Vec<u64> = post.iter().map(|&p| p + reserve).collect();
        let sets: Vec<IntervalSet> = (0..n)
            .map(|ix| IntervalSet::singleton(Interval::new(low[ix], post[ix])))
            .collect();

        Labeling {
            post,
            low,
            advertised_hi,
            sets,
            line,

            reserve,
        }
    }

    /// The node's own tree interval `[low, post]` — what the node itself
    /// queries with.
    #[inline]
    pub fn tree_interval(&self, v: NodeId) -> Interval {
        Interval::new(self.low[v.index()], self.post[v.index()])
    }

    /// The interval inheritors copy: `[low, advertised_hi]` (covers the
    /// remaining refinement tail).
    #[inline]
    pub fn advertised_interval(&self, v: NodeId) -> Interval {
        Interval::new(self.low[v.index()], self.advertised_hi[v.index()])
    }

    /// Decodes an interval set into live node ids, ascending by postorder
    /// number, deduplicating overlap between intervals — into a caller
    /// buffer: clears `out`, keeps its capacity. Batch decode loops hoist
    /// the buffer so only the largest row ever pays allocation — the same
    /// hoisting `reaches_batch` uses.
    pub fn decode_into(&self, set: &IntervalSet, out: &mut Vec<NodeId>) {
        out.clear();
        let mut next_free = 0u64; // numbers below this were already decoded
        for iv in set.iter() {
            let lo = iv.lo().max(next_free);
            if lo > iv.hi() {
                continue;
            }
            out.extend(self.line.live_in_range(lo, iv.hi()).map(|(_, n)| NodeId(n)));
            next_free = iv.hi().saturating_add(1);
        }
    }

    /// Counts live nodes covered by a set (without materializing them).
    ///
    /// The dominant single-interval (tree-only) labels skip the overlap
    /// bookkeeping entirely: one number-line range count, no per-interval
    /// clamp state.
    pub fn decode_count(&self, set: &IntervalSet) -> usize {
        match set.as_slice() {
            [] => 0,
            [only] => self.line.live_in_range(only.lo(), only.hi()).count(),
            items => {
                let mut count = 0;
                let mut next_free = 0u64;
                for iv in items {
                    let lo = iv.lo().max(next_free);
                    if lo > iv.hi() {
                        continue;
                    }
                    count += self.line.live_in_range(lo, iv.hi()).count();
                    next_free = iv.hi().saturating_add(1);
                }
                count
            }
        }
    }

    /// Resets every interval set to just the node's tree interval (the state
    /// before propagation).
    pub fn reset_sets(&mut self) {
        for ix in 0..self.sets.len() {
            self.sets[ix] = IntervalSet::singleton(Interval::new(self.low[ix], self.post[ix]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::treecover::{cover_of, CoverStrategy};
    use tc_graph::DiGraph;

    /// A tree: 0 -> {1, 2}, 1 -> {3, 4}.
    fn tree() -> DiGraph {
        DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (1, 4)])
    }

    fn labeled(gap: u64, reserve: u64) -> (Labeling, TreeCover) {
        let g = tree();
        let cover = cover_of(&g, CoverStrategy::Optimal).unwrap();
        (Labeling::assign(&cover, gap, reserve), cover)
    }

    fn decode(lab: &Labeling, set: &IntervalSet) -> Vec<NodeId> {
        let mut out = Vec::new();
        lab.decode_into(set, &mut out);
        out
    }

    #[test]
    fn postorder_with_unit_gap_matches_paper_semantics() {
        // With gap 1 and no reserve, numbers are 1..=n in postorder and the
        // low equals the smallest descendant postorder number (§3.1).
        let (lab, cover) = labeled(1, 0);
        // Postorder: 3, 4, 1, 2, 0 -> numbers 1, 2, 3, 4, 5.
        assert_eq!(lab.post[3], 1);
        assert_eq!(lab.post[4], 2);
        assert_eq!(lab.post[1], 3);
        assert_eq!(lab.post[2], 4);
        assert_eq!(lab.post[0], 5);
        // Leaf interval is [post, post]; internal low = min descendant post.
        assert_eq!(lab.tree_interval(tc_graph::NodeId(3)), Interval::new(1, 1));
        assert_eq!(lab.tree_interval(tc_graph::NodeId(1)), Interval::new(1, 3));
        assert_eq!(lab.tree_interval(tc_graph::NodeId(2)), Interval::new(4, 4));
        assert_eq!(lab.tree_interval(tc_graph::NodeId(0)), Interval::new(1, 5));
        assert!(cover.check_consistency(&tree()));
    }

    #[test]
    fn gapped_numbers_are_spaced_and_lows_sit_after_previous_tail() {
        let (lab, _) = labeled(10, 0);
        // Numbers 10, 20, 30, 40, 50 in the same postorder.
        assert_eq!(lab.post[3], 10);
        assert_eq!(lab.post[0], 50);
        // Leaf 3 opens the line: low = 1. Leaf 4 follows node 3: low = 11.
        assert_eq!(lab.low[3], 1);
        assert_eq!(lab.low[4], 11);
        // Node 2 follows node 1 (post 30): low = 31.
        assert_eq!(lab.low[2], 31);
        // Root covers everything from 1.
        assert_eq!(lab.tree_interval(tc_graph::NodeId(0)), Interval::new(1, 50));
    }

    #[test]
    fn reserve_shifts_lows_and_advertised_his() {
        let (lab, _) = labeled(10, 3);
        // post(3) = 10, tail = (10, 13]; next node's low must clear it.
        assert_eq!(lab.advertised_hi[3], 13);
        assert_eq!(lab.low[4], 14);
        assert_eq!(lab.advertised_interval(tc_graph::NodeId(3)), Interval::new(4, 13));
        assert_eq!(lab.tree_interval(tc_graph::NodeId(3)), Interval::new(4, 10));
    }

    #[test]
    fn line_knows_every_number() {
        let (lab, _) = labeled(10, 0);
        for v in 0..5u32 {
            assert_eq!(lab.line.node_at(lab.post[v as usize]), Some(v));
        }
        assert_eq!(lab.line.live_count(), 5);
    }

    #[test]
    fn decode_roundtrips_tree_reachability() {
        let (lab, _) = labeled(10, 0);
        let root_set = &lab.sets[0];
        let mut nodes = decode(&lab, root_set);
        nodes.sort_unstable();
        assert_eq!(nodes.len(), 5, "root reaches all (reflexively)");
        assert_eq!(lab.decode_count(root_set), 5);
        let leaf = decode(&lab, &lab.sets[3]);
        assert_eq!(leaf, vec![tc_graph::NodeId(3)]);
    }

    #[test]
    fn decode_dedupes_overlapping_intervals() {
        let (lab, _) = labeled(10, 0);
        let mut set = IntervalSet::new();
        set.insert(Interval::new(1, 25)); // covers posts 10, 20
        set.insert(Interval::new(15, 45)); // covers posts 20, 30, 40
        let nodes = decode(&lab, &set);
        assert_eq!(nodes.len(), 4, "post 20 must be emitted once");
        assert_eq!(lab.decode_count(&set), 4);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_gap_with_reserve_panics() {
        let g = tree();
        let cover = cover_of(&g, CoverStrategy::Optimal).unwrap();
        let _ = Labeling::assign(&cover, 4, 3);
    }

    #[test]
    fn forest_roots_get_disjoint_ranges() {
        let g = DiGraph::from_edges([(0, 1), (2, 3)]);
        let cover = cover_of(&g, CoverStrategy::Optimal).unwrap();
        let lab = Labeling::assign(&cover, 10, 0);
        let i0 = lab.tree_interval(tc_graph::NodeId(0));
        let i2 = lab.tree_interval(tc_graph::NodeId(2));
        assert!(i0.hi() < i2.lo() || i2.hi() < i0.lo(), "{i0} vs {i2} overlap");
    }
}
