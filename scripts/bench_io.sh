#!/usr/bin/env bash
# Runs the out-of-core frozen-plane experiment (DESIGN.md, "Out-of-core
# frozen plane") and leaves the table in results/io_scale.csv: open_paged
# restart cost vs full decode across graph sizes, then page-reads/probe
# and pool hit rate across buffer-pool sizes (answers asserted identical
# to the resident plane before any timing).
#
# Usage: scripts/bench_io.sh [io_scale flags...]
#   e.g. scripts/bench_io.sh --nodes 40000 --probes 200000 --reps 5
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p tc-bench --bin io_scale
exec target/release/io_scale "$@"
