#!/usr/bin/env bash
# Runs the network-serving closed-loop load experiment (DESIGN.md, "Network
# serving") and leaves the table in results/net_scale.csv.
#
# The load generator starts the daemon in-process on an ephemeral localhost
# port, verifies network answers against an in-process oracle, then measures
# throughput and p50/p95/p99 round-trip latency at 1/2/4/8 client threads
# with a mixed read/write request stream. Any protocol error or handler
# panic fails the run.
#
# Usage: scripts/bench_net.sh [serve_net flags...]
#   e.g. scripts/bench_net.sh --nodes 2000 --duration-ms 1000 --write-pct 10
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p tc-bench --bin serve_net
exec target/release/serve_net "$@"
