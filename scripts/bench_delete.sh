#!/usr/bin/env bash
# Runs the scoped-vs-global deletion recompute experiment (EXPERIMENTS.md
# X2; DESIGN.md, "Scoped deletion recompute") and leaves the table in
# results/delete_scale.csv. Correctness is asserted before timing: the two
# modes must produce identical interval sets over the whole sequence.
#
# Usage: scripts/bench_delete.sh [delete_scale flags...]
#   e.g. scripts/bench_delete.sh --nodes 50000 --degree 3 --ops 24
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p tc-bench --bin delete_scale
exec target/release/delete_scale "$@"
