#!/usr/bin/env bash
# Runs the sharded-closure scaling experiment (DESIGN.md, "Sharded
# closure") and leaves the table in results/shard_scale.csv.
#
# Usage: scripts/bench_shard.sh [shard_scale flags...]
#   e.g. scripts/bench_shard.sh --nodes 20000 --reps 3 --duration-ms 300
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p tc-bench --bin shard_scale
exec target/release/shard_scale "$@"
