#!/usr/bin/env bash
# Runs the hybrid-oracle experiment (DESIGN.md, "Hybrid oracle") and leaves
# the table in results/hybrid_scale.csv. The interval baseline, the cutoff
# screen and the armed hybrid plane are asserted answer-identical over the
# full probe sets before any timing; the binary aborts on divergence.
#
# Usage: scripts/bench_hybrid.sh [hybrid_scale flags...]
#   e.g. scripts/bench_hybrid.sh --layers 96 --width 700 --order random
#        scripts/bench_hybrid.sh --order topo --threshold 4
#        scripts/bench_hybrid.sh --sources uniform   # don't target heavy rows
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p tc-bench --bin hybrid_scale
exec target/release/hybrid_scale "$@"
