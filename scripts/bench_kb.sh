#!/usr/bin/env bash
# Runs the rule-driven knowledge-base serving experiment (DESIGN.md,
# "Rule-driven inference"; EXPERIMENTS.md X11) and leaves the table in
# results/kb_scale.csv.
#
# The bench starts the daemon in-process on an ephemeral localhost port
# with an empty graph, defines Horn rules over the wire, then streams a
# layered parts-catalog fact mix (asserts + DRed retracts) through a real
# socket in windows, timing ingestion throughput and ask round-trip
# latency. Every wire answer is compared with an in-process mirror KB, and
# the mirror's naive re-derivation gate runs after every window; any
# divergence exits nonzero.
#
# Usage: scripts/bench_kb.sh [kb_scale flags...]
#   e.g. scripts/bench_kb.sh --windows 6 --ops-per-window 400 --retract-pct 20
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p tc-bench --bin kb_scale
exec target/release/kb_scale "$@"
