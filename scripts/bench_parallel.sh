#!/usr/bin/env bash
# Runs the level-parallel scaling experiment (DESIGN.md, "Parallel
# construction") and leaves the table in results/parallel_scale.csv.
#
# Usage: scripts/bench_parallel.sh [parallel_scale flags...]
#   e.g. scripts/bench_parallel.sh --nodes 100000 --threads 1,2,4,8,16
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p tc-bench --bin parallel_scale
exec target/release/parallel_scale "$@"
