#!/usr/bin/env bash
# Runs the frozen-query-plane experiment (DESIGN.md, "Frozen query plane")
# and leaves the table in results/query_plane.csv.
#
# Usage: scripts/bench_query.sh [query_plane flags...]
#   e.g. scripts/bench_query.sh --nodes 50000 --reps 5 --probes 1000000
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p tc-bench --bin query_plane
exec target/release/query_plane "$@"
