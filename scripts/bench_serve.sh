#!/usr/bin/env bash
# Runs the concurrent-serving scaling experiment (DESIGN.md, "Concurrent
# serving") and leaves the table in results/serve_scale.csv.
#
# Usage: scripts/bench_serve.sh [serve_scale flags...]
#   e.g. scripts/bench_serve.sh --nodes 50000 --reps 5 --duration-ms 300
#   add --churn-mix for mixed add/remove writer batches (scoped deletes)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p tc-bench --bin serve_scale
exec target/release/serve_scale "$@"
