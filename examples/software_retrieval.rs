//! A Lassie-style classification-based software retrieval system (§3.2 of
//! the paper cites "Lassie, a classification-based software retrieval
//! system" as evidence that real hierarchies are benign).
//!
//! Components are described by feature sets; the [`tc_kb::Classifier`]
//! computes subsumption from the definitions and maintains the hierarchy,
//! so "find every component at least as specific as this query" is a
//! closure lookup.
//!
//! Run with: `cargo run -p tc-suite --example software_retrieval`

use tc_kb::{Classifier, DefinedConcept};

fn main() {
    let mut catalog = Classifier::new();

    // Index a component library by capability features.
    let components = [
        ("sort-any", vec!["sorts"]),
        ("sort-stable", vec!["sorts", "stable"]),
        ("sort-parallel", vec!["sorts", "parallel"]),
        ("sort-stable-parallel", vec!["sorts", "stable", "parallel"]),
        ("search-any", vec!["searches"]),
        ("search-indexed", vec!["searches", "indexed"]),
        ("btree-search", vec!["searches", "indexed", "ordered"]),
        ("hash-search", vec!["searches", "indexed", "hashed"]),
        ("logger", vec!["logs"]),
    ];
    for (name, feats) in &components {
        let features: Vec<&str> = feats.to_vec();
        catalog
            .classify(DefinedConcept::new(name, &features))
            .expect("unique names");
    }

    // Retrieval: every component requiring at least the query's features,
    // served from the cached hierarchy via interval decoding.
    println!(
        "components with (sorts, stable): {:?}",
        catalog.retrieve(&["sorts", "stable"])
    );
    println!(
        "components with (searches, indexed): {:?}",
        catalog.retrieve(&["searches", "indexed"])
    );

    // Subsumption between catalog entries is served from the cached
    // hierarchy — one interval lookup each.
    println!(
        "sort-any generalizes sort-stable-parallel? {}",
        catalog.subsumes("sort-any", "sort-stable-parallel").unwrap()
    );
    println!(
        "search-indexed generalizes btree-search?   {}",
        catalog.subsumes("search-indexed", "btree-search").unwrap()
    );
    println!(
        "sort-stable generalizes sort-parallel?     {}",
        catalog.subsumes("sort-stable", "sort-parallel").unwrap()
    );

    // A late arrival slots into the middle of the hierarchy automatically.
    catalog
        .classify(DefinedConcept::new("sort-indexed", &["sorts", "indexed"]))
        .unwrap();
    println!(
        "\nafter adding sort-indexed: sort-any generalizes it? {}",
        catalog.subsumes("sort-any", "sort-indexed").unwrap()
    );

    // Show the maintained hierarchy.
    println!("\ncatalog hierarchy (concept: parents):");
    for name in catalog.taxonomy().concepts().collect::<Vec<_>>() {
        let parents = catalog.taxonomy().parents(name).unwrap();
        println!("  {name}: {parents:?}");
    }
    println!("\nclosure stats: {}", catalog.taxonomy().closure().stats());
}
