//! An IS-A hierarchy with subsumption, inheritance, lattice operations, and
//! the paper's constant-time hierarchy refinement (§2.1, §4.1, §6).
//!
//! Run with: `cargo run -p tc-suite --example isa_hierarchy`

use tc_kb::{lattice, Inheritance, PropertyLookup, Taxonomy};

fn main() {
    let mut kb = Taxonomy::new();

    // A product taxonomy in the CLASSIC style.
    kb.add_root("thing").unwrap();
    kb.add_concept("device", &["thing"]).unwrap();
    kb.add_concept("furniture", &["thing"]).unwrap();
    kb.add_concept("printer", &["device"]).unwrap();
    kb.add_concept("scanner", &["device"]).unwrap();
    kb.add_concept("laser-printer", &["printer"]).unwrap();
    kb.add_concept("inkjet-printer", &["printer"]).unwrap();
    kb.add_concept("copier", &["printer", "scanner"]).unwrap();
    kb.add_concept("desk", &["furniture"]).unwrap();

    // Subsumption is one interval lookup.
    println!("device subsumes copier?   {}", kb.subsumes("device", "copier").unwrap());
    println!("scanner subsumes copier?  {}", kb.subsumes("scanner", "copier").unwrap());
    println!("printer subsumes desk?    {}", kb.subsumes("printer", "desk").unwrap());

    // Lattice operations (§6: "subsumption, disjointness, least common
    // ancestors").
    let lub = lattice::least_common_subsumers(&kb, "laser-printer", "scanner").unwrap();
    println!(
        "\nLCA(laser-printer, scanner) = {:?}",
        lub.iter().map(|&c| kb.name(c)).collect::<Vec<_>>()
    );
    println!(
        "printer and scanner disjoint? {}",
        lattice::disjoint(&kb, "printer", "scanner").unwrap()
    );
    println!(
        "printer and furniture disjoint? {}",
        lattice::disjoint(&kb, "printer", "furniture").unwrap()
    );

    // Property inheritance with most-specific-wins overriding.
    let mut props = Inheritance::new();
    props.set(&kb, "device", "powered", "mains").unwrap();
    props.set(&kb, "printer", "consumable", "toner-or-ink").unwrap();
    props.set(&kb, "inkjet-printer", "consumable", "ink").unwrap();
    for concept in ["laser-printer", "inkjet-printer", "copier"] {
        match props.effective(&kb, concept, "consumable").unwrap() {
            PropertyLookup::Value { value, provider } => println!(
                "{concept}: consumable = {value} (from {})",
                kb.name(provider)
            ),
            other => println!("{concept}: consumable = {other:?}"),
        }
    }

    // §4.1 hierarchy refinement: interpose "imaging-device" between copier
    // and its parents — constant-time, no interval updates anywhere.
    let before = kb.closure().total_intervals();
    kb.refine("imaging-device", "copier").unwrap();
    let after = kb.closure().total_intervals();
    println!(
        "\nrefined copier under new 'imaging-device' (intervals {before} -> {after}: \
         only the new node's own label was added, no existing label changed)"
    );
    println!(
        "printer subsumes imaging-device? {}",
        kb.subsumes("printer", "imaging-device").unwrap()
    );
    println!(
        "imaging-device subsumes copier?  {}",
        kb.subsumes("imaging-device", "copier").unwrap()
    );

    // The underlying closure is inspectable.
    println!("\nclosure stats: {}", kb.closure().stats());
}
