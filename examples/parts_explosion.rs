//! Parts explosion: the classic database use case for transitive closure
//! (§1–2 of the paper — "an airplane, for example, may have close to 100,000
//! different kinds of parts").
//!
//! A `part_of` relation is kept in a [`tc_relation::TcView`]: the compressed
//! closure is the materialized view, updated incrementally as the bill of
//! materials evolves, and "where-used" / "explodes-to" queries are lookups.
//!
//! Run with: `cargo run -p tc-suite --example parts_explosion`

use tc_relation::TcView;

fn main() {
    let mut bom = TcView::new();

    // Build an aircraft bill of materials (parent contains child).
    for (assembly, part) in [
        ("aircraft", "airframe"),
        ("aircraft", "propulsion"),
        ("aircraft", "avionics"),
        ("airframe", "wing"),
        ("airframe", "fuselage"),
        ("wing", "flap"),
        ("wing", "aileron"),
        ("flap", "actuator"),
        ("aileron", "actuator"), // shared subcomponent
        ("propulsion", "engine"),
        ("engine", "turbine"),
        ("engine", "fuel-pump"),
        ("turbine", "blade"),
        ("avionics", "flight-computer"),
        ("flight-computer", "cpu-board"),
        ("actuator", "servo"),
        ("servo", "motor-coil"),
    ] {
        bom.insert(assembly, part).expect("BOM stays acyclic");
    }

    // Explodes-to: everything transitively contained in a wing.
    let mut wing_parts = bom.descendants("wing").expect("known part");
    wing_parts.sort_unstable();
    println!("wing explodes to: {wing_parts:?}");

    // Where-used: every assembly containing an actuator.
    let mut used_in = bom.ancestors("actuator").expect("known part");
    used_in.sort_unstable();
    println!("actuator used in: {used_in:?}");

    // Membership by lookup, not traversal.
    println!(
        "does the aircraft contain a motor-coil? {}",
        bom.reaches("aircraft", "motor-coil").unwrap()
    );
    println!(
        "does the avionics bay contain a servo? {}",
        bom.reaches("avionics", "servo").unwrap()
    );

    // An engineering change: flaps switch to electric actuation.
    bom.remove("flap", "actuator").expect("tuple exists");
    bom.insert("flap", "electric-actuator").unwrap();
    bom.insert("electric-actuator", "motor-coil").unwrap();
    println!("\nafter the engineering change:");
    println!(
        "  flap still uses (hydraulic) servo? {}",
        bom.reaches("flap", "servo").unwrap()
    );
    println!(
        "  flap uses motor-coil? {}",
        bom.reaches("flap", "motor-coil").unwrap()
    );
    println!(
        "  aileron still uses servo? {}",
        bom.reaches("aileron", "servo").unwrap()
    );

    // Cycles (a part containing itself transitively) are rejected.
    let err = bom.insert("motor-coil", "aircraft").unwrap_err();
    println!("\nattempting to nest the aircraft inside a coil: {err}");

    // Storage accounting for the materialized view.
    let stats = bom.closure().stats();
    println!("\nmaterialized view storage: {stats}");
}
