//! A guided tour of the paper's §4 incremental update algorithms,
//! reproducing the running example of Figures 4.1 and 4.2.
//!
//! Run with: `cargo run -p tc-suite --example incremental_updates`

use tc_core::ClosureConfig;
use tc_graph::{DiGraph, NodeId};

fn show(closure: &tc_core::CompressedClosure, names: &[&str]) {
    for v in closure.graph().nodes() {
        let name = names.get(v.index()).copied().unwrap_or("new");
        println!(
            "  {:<4} post={:<4} intervals={}",
            name,
            closure.post_number(v),
            closure.intervals(v)
        );
    }
}

fn main() {
    // The paper's Fig 4.1 uses gaps of 10 between postorder numbers. Build
    // a small tree a -> {b, c} so the numbers land exactly on the paper's:
    // b=10?, ... we use a -> b, a -> c: postorder b=10, c=20, a=30.
    let g = DiGraph::from_edges([(0, 1), (0, 2)]);
    let names = ["a", "b", "c"];
    let mut closure = ClosureConfig::new().gap(10).build(&g).expect("acyclic");
    println!("initial labels (gap 10, as in Fig 4.1):");
    show(&closure, &names);

    // §4.1 addition of a tree arc: new node under b takes the midpoint of
    // b's owned gap — "the addition of node x and the tree arc (b,x)
    // results in the postorder number 35 and the interval [31,35]" scaled
    // to our region (0,10): midpoint 5, interval [1,5].
    let x = closure.add_node_with_parents(&[NodeId(1)]).unwrap();
    println!("\nafter adding x under b (no other label changed):");
    show(&closure, &["a", "b", "c", "x"]);
    assert!(closure.reaches(NodeId(0), x));

    // Another leaf under c.
    let y = closure.add_node_with_parents(&[NodeId(2)]).unwrap();
    println!("\nafter adding y under c:");
    show(&closure, &["a", "b", "c", "x", "y"]);

    // §4.1 addition of a non-tree arc: (x, y). y's intervals propagate to x
    // and its predecessors, stopping where subsumption already covers them —
    // a's tree interval subsumes everything, so a is untouched (the paper's
    // Fig 4.2: "[11,20] is subsumed by the interval [1,4] associated with b
    // and hence no new interval is added").
    let a_before = closure.intervals(NodeId(0)).count();
    closure.add_edge(x, y).unwrap();
    println!("\nafter adding the non-tree arc (x, y):");
    show(&closure, &["a", "b", "c", "x", "y"]);
    assert_eq!(closure.intervals(NodeId(0)).count(), a_before, "a was untouched");
    assert!(closure.reaches(NodeId(1), y), "b now reaches y through x");

    // §4.2 deletion of a tree arc: remove (c, y) — y's subtree relocates to
    // fresh numbers above the maximum; the old number is tombstoned.
    closure.remove_edge(NodeId(2), y).unwrap();
    println!("\nafter deleting the tree arc (c, y): y relocated, x still reaches it");
    show(&closure, &["a", "b", "c", "x", "y"]);
    assert!(!closure.reaches(NodeId(2), y));
    assert!(closure.reaches(x, y), "the non-tree path survives");

    // §4.1 "what if empty numbers run out": flood b's gap until the closure
    // relabels itself.
    for _ in 0..12 {
        closure.add_node_with_parents(&[NodeId(1)]).unwrap();
    }
    println!(
        "\nafter 12 more leaves under b the numbers were respaced automatically; \
         everything still verifies: {:?}",
        closure.verify()
    );

    // And a full rebuild recovers the optimal tree cover after churn.
    let before = closure.total_intervals();
    closure.rebuild();
    println!(
        "rebuild(): intervals {} -> {} (optimal cover restored)",
        before,
        closure.total_intervals()
    );
}
