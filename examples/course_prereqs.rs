//! Course prerequisites: bidirectional reachability and path witnesses.
//!
//! A prerequisite DAG queried in both directions — "what must I take before
//! X?" (predecessors) and "what does X unlock?" (successors) — using
//! [`tc_core::bidir::BiClosure`], plus concrete prerequisite chains via
//! `find_path`.
//!
//! Run with: `cargo run -p tc-suite --example course_prereqs`

use tc_core::bidir::BiClosure;
use tc_graph::{DiGraph, NodeId};

fn main() {
    let courses = [
        "calculus-1",     // 0
        "calculus-2",     // 1
        "linear-algebra", // 2
        "probability",    // 3
        "statistics",     // 4
        "programming",    // 5
        "data-structs",   // 6
        "algorithms",     // 7
        "machine-learn",  // 8
        "deep-learning",  // 9
    ];
    // Arc a -> b: a is a prerequisite of b.
    let g = DiGraph::from_edges([
        (0, 1), // calc1 -> calc2
        (0, 2), // calc1 -> linalg
        (1, 3), // calc2 -> prob
        (3, 4), // prob -> stats
        (5, 6), // prog -> ds
        (6, 7), // ds -> algo
        (2, 8), // linalg -> ml
        (4, 8), // stats -> ml
        (7, 8), // algo -> ml
        (8, 9), // ml -> dl
    ]);
    let bi = BiClosure::build(&g).expect("prerequisites are acyclic");

    let name = |v: NodeId| courses[v.index()];

    // Everything required before machine learning (reverse closure decode).
    let mut before: Vec<&str> = bi
        .predecessors(NodeId(8))
        .into_iter()
        .filter(|&v| v != NodeId(8))
        .map(name)
        .collect();
    before.sort_unstable();
    println!("required before machine-learn: {before:?}");

    // Everything calculus-1 unlocks (forward decode).
    let mut unlocks: Vec<&str> = bi
        .successors(NodeId(0))
        .into_iter()
        .filter(|&v| v != NodeId(0))
        .map(name)
        .collect();
    unlocks.sort_unstable();
    println!("calculus-1 unlocks: {unlocks:?}");

    // A concrete prerequisite chain, reconstructed by greedy descent over
    // the closure (no backtracking).
    let path = bi
        .forward()
        .find_path(NodeId(0), NodeId(9))
        .expect("calc1 leads to deep learning");
    let chain: Vec<&str> = path.into_iter().map(name).collect();
    println!("one chain from calculus-1 to deep-learning: {}", chain.join(" -> "));

    // Curriculum change: a new cross-listed course slots in incrementally.
    let mut bi = bi;
    let optimization = bi
        .add_node_with_parents(&[NodeId(1), NodeId(2)]) // needs calc2 + linalg
        .expect("valid parents");
    bi.add_edge(optimization, NodeId(8)).expect("acyclic");
    println!(
        "\nafter adding 'optimization' (calc2 + linalg -> optimization -> ml):"
    );
    println!(
        "  is calculus-1 now a prerequisite of it? {}",
        bi.reaches(NodeId(0), optimization)
    );
    println!(
        "  does it feed deep-learning? {}",
        bi.reaches(optimization, NodeId(9))
    );
    println!(
        "  prerequisites of ml now number {}",
        bi.predecessor_count(NodeId(8)) - 1
    );
}
