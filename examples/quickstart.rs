//! Quickstart: build a compressed transitive closure, query it, inspect the
//! interval labels, and see the storage accounting.
//!
//! Run with: `cargo run -p tc-suite --example quickstart`

use tc_core::{ClosureConfig, CompressedClosure};
use tc_graph::{DiGraph, NodeId};

fn main() {
    // A small reports-to DAG:
    //
    //        0 (ceo)
    //       /        \
    //   1 (vp-eng)   2 (vp-sales)
    //    |     \      /
    //  3 (dev) 4 (devops)      <- devops reports to both VPs
    //    |
    //  5 (intern)
    let g = DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (1, 4), (2, 4), (3, 5)]);
    let names = ["ceo", "vp-eng", "vp-sales", "dev", "devops", "intern"];

    // Build with contiguous postorder numbers (the paper's §3 setting).
    let closure = ClosureConfig::new().gap(1).build(&g).expect("acyclic");

    println!("Interval labels (postorder number + interval set per node):");
    for v in g.nodes() {
        println!(
            "  {:<9} post={:<2} intervals={}",
            names[v.index()],
            closure.post_number(v),
            closure.intervals(v)
        );
    }

    // Reachability is a single interval lookup.
    println!("\nQueries:");
    for (src, dst) in [(0, 5), (2, 4), (2, 3), (4, 4)] {
        println!(
            "  {} ->* {} : {}",
            names[src],
            names[dst],
            closure.reaches(NodeId(src as u32), NodeId(dst as u32))
        );
    }

    // Decode a successor list back out of the intervals.
    let under_vp_eng: Vec<&str> = closure
        .successors(NodeId(1))
        .into_iter()
        .map(|v| names[v.index()])
        .collect();
    println!("\nEveryone under vp-eng (reflexive): {under_vp_eng:?}");

    // Storage accounting in the paper's units.
    let stats = closure.stats();
    println!("\nStorage: {stats}");

    // The closure is updatable in place (§4 of the paper).
    let mut closure = CompressedClosure::build(&g).expect("acyclic");
    let newcomer = closure
        .add_node_with_parents(&[NodeId(4)])
        .expect("valid parent");
    println!(
        "\nAdded a report under devops; ceo ->* newcomer = {}",
        closure.reaches(NodeId(0), newcomer)
    );

    // Graphviz output with tree arcs solid / non-tree arcs dashed:
    println!("\nDOT rendering:\n{}", closure.to_dot());
}
